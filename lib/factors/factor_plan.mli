(** The backend-agnostic compiled factor plan — the single source of the
    paper's §3.1/§3.3 correction-factor specializations.

    [compile] runs {!Plr_nnacci.Analysis} once per factor list under an
    {!Opts.t} and produces a self-describing compiled form per list.  Every
    backend consumes the same plan: the modeled GPU engine charges device
    counters through {!Make.hooks}, the CPU backends ([Multicore], [Stream])
    run the specialized {!Make.apply_list} sweep, and the CUDA generator
    ([Plr_codegen.Specialize]) emits code from the compiled constructors. *)

module Analysis = Plr_nnacci.Analysis

type bitmask
(** One bit per factor position (used by the 0/1 specialization). *)

val mask_get : bitmask -> int -> bool

module Make (S : Plr_util.Scalar.S) : sig
  type compiled =
    | All_equal of S.t
        (** every factor equals this constant; no table is stored *)
    | Zero_one of { period : int option; ones : bitmask }
        (** every factor is 0 or 1; [ones] marks the 1 positions.  With a
            short [period] (≤ 64) the pattern folds into a compile-time
            modulo test and no table is stored at all. *)
    | Repeating of { period : int; stored : S.t array }
        (** the list repeats; only the first period is stored *)
    | Decayed of { cutoff : int; stored : S.t array }
        (** all factors at index ≥ [cutoff] are exactly 0 (flush-to-zero
            index); consumers skip the all-zero tail — the CPU analogue of
            the paper's skip-whole-warps trick *)
    | Dense of S.t array  (** no specialization applies *)

  type t = {
    order : int;  (** k — number of factor lists *)
    m : int;  (** factors per list *)
    opts : Opts.t;
    raw : S.t array array;  (** the uncompressed k×m factor lists *)
    analyses : S.t Analysis.t array;  (** raw analysis, before [opts] gating *)
    compiled : compiled array;  (** one compiled form per list *)
    zero_tail : int option;
        (** corrections past this index are suppressed (FTZ optimization) *)
  }

  type hooks = {
    on_load : j:int -> q:int -> unit;
        (** a factor-table element load ([q] is the index within the stored
            table of list [j]) *)
    on_add : unit -> unit;
    on_mul : unit -> unit;
    on_select : unit -> unit;  (** the 0/1 conditional-add predicate *)
  }
  (** Callbacks charged by {!correct} with the exact operation mix of the
      specialized code — the GPU model plugs its device counters in here. *)

  val no_hooks : hooks

  val compile : ?opts:Opts.t -> ?max_period:int -> S.t array array -> t
  (** Analyze and compile precomputed factor lists.  [max_period] bounds the
      repetition search (see {!Analysis.Make.analyze}); CPU backends pass a
      small bound because their chunks are far larger than a GPU block's. *)

  val of_feedback :
    ?opts:Opts.t -> ?max_period:int -> feedback:S.t array -> m:int -> unit -> t
  (** Precompute the n-nacci factor lists for [feedback] ([m] per list) and
      compile them.  Floating-point factors are generated in double
      precision and converted down, so a decaying tail reaches exact zeros
      under FTZ (paper §3). *)

  val correct : ?hooks:hooks -> t -> j:int -> q:int -> carry:S.t -> acc:S.t -> S.t
  (** [acc + F_j(q)·carry] through the compiled form of list [j], invoking
      [hooks] with the specialized operation mix. *)

  val apply_list :
    ?q0:int -> t -> j:int -> carry:S.t -> S.t array -> base:int -> len:int -> unit
  (** Whole-list correction sweep: [y.(base+q) += F_j(q0+q)·carry] for
      [q ∈ [0, len)], specialized per compiled form (the CPU hot path).
      Equivalent to folding {!correct} over [q]; a [Decayed] list stops at
      its cutoff.  [q0] (default 0) offsets the factor index without
      moving the output window, so a long sweep can be split into
      independent ranges and run in parallel. *)

  val apply_list_f :
    ?q0:int ->
    t ->
    j:int ->
    carry:S.t ->
    Plr_util.Buf.t ->
    base:int ->
    len:int ->
    unit
  (** {!apply_list} monomorphized onto unboxed {!Plr_util.Buf.t} storage.
      Only valid when [S.rep] is [Float_rep] (raises [Invalid_argument]
      otherwise); the refined branch replicates the generic evaluator's
      operation/rounding sequence exactly, so results are bitwise
      identical — including the emulated-binary32 round after every add
      and multiply. *)

  val apply_list_int :
    ?q0:int ->
    t ->
    j:int ->
    carry:S.t ->
    int array ->
    base:int ->
    len:int ->
    unit
  (** {!apply_list} monomorphized onto a flat [int array].  Only valid
      when [S.rep] is [Int_rep] (raises [Invalid_argument] otherwise);
      bitwise identical to the generic evaluator. *)

  val effective : t -> int -> S.t Analysis.t
  (** The analysis of list [j] as the optimizer sees it after [opts]
      gating — [General] when the matching toggle is off. *)

  val value : t -> int -> int -> S.t
  (** [value t j q]: factor [q] of list [j], read back through the compiled
      representation. *)

  val table : t -> int -> S.t array option
  (** The device-resident table the compiled form of list [j] needs:
      [None] when the form folds into code (constant or short 0/1 period),
      the stored period/prefix for [Repeating]/[Decayed], the full list
      otherwise. *)

  val table_elems : t -> int -> int
  (** [Array.length] of {!table} (0 for [None]). *)

  val table_bytes : t -> int
  (** Total bytes of all stored tables. *)

  val one_positions : t -> int -> int list
  (** For a short-period 0/1 list: indices within one period whose factor
      is one.  Empty for every other compiled form. *)

  val describe : t -> int -> string
  (** Human-readable tag of the compiled form (for summaries and logs). *)

  val class_code : t -> int -> int
  (** Stable small integer for the compiled form of list [j] — 0
      all-equal, 1 zero-one, 2 repeating, 3 decayed, 4 dense.  Used as a
      trace-event argument (see [docs/observability.md]). *)
end
