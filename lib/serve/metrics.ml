module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr = Atomic.incr
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get = Atomic.get
end

module Histogram = struct
  (* Upper bounds are 2^i microseconds for i in [0, 25], plus one
     overflow bucket: 27 buckets cover 1us .. 34s, which brackets any
     latency a request through the pool can see.  The exact sum is kept
     in nanoseconds in an int atomic (63-bit: ~292 years of latency), so
     [mean] does not suffer bucket quantization. *)
  let finite_buckets = 26

  type t = {
    buckets : int Atomic.t array; (* finite_buckets + 1, last = overflow *)
    sum_ns : int Atomic.t;
    observations : int Atomic.t;
  }

  let create () =
    {
      buckets = Array.init (finite_buckets + 1) (fun _ -> Atomic.make 0);
      sum_ns = Atomic.make 0;
      observations = Atomic.make 0;
    }

  let bound_us i = 1 lsl i
  let bound_s i = float_of_int (bound_us i) *. 1e-6

  let bucket_of seconds =
    let us = seconds *. 1e6 in
    let rec find i =
      if i >= finite_buckets then finite_buckets
      else if us <= float_of_int (bound_us i) then i
      else find (i + 1)
    in
    find 0

  let observe t seconds =
    let seconds = if Float.is_finite seconds then Float.max 0.0 seconds else 0.0 in
    Atomic.incr t.buckets.(bucket_of seconds);
    ignore (Atomic.fetch_and_add t.sum_ns (int_of_float (seconds *. 1e9)));
    Atomic.incr t.observations

  let count t = Atomic.get t.observations

  let mean t =
    let n = count t in
    if n = 0 then 0.0 else float_of_int (Atomic.get t.sum_ns) *. 1e-9 /. float_of_int n

  let percentile t q =
    let n = count t in
    if n = 0 then 0.0
    else begin
      let need = Float.max 1.0 (Float.of_int n *. Float.min 1.0 (Float.max 0.0 q)) in
      let acc = ref 0 in
      let result = ref (bound_s (finite_buckets - 1)) in
      (try
         Array.iteri
           (fun i b ->
             acc := !acc + Atomic.get b;
             if float_of_int !acc >= need then begin
               (* the overflow bucket reports the last finite bound *)
               result := bound_s (min i (finite_buckets - 1));
               raise Exit
             end)
           t.buckets
       with Exit -> ());
      !result
    end

  let json_ms v = Printf.sprintf "%.6g" (v *. 1e3)

  let to_json t =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{ \"count\": %d, \"mean_ms\": %s, \"p50_ms\": %s, \"p95_ms\": %s, \
          \"p99_ms\": %s, \"buckets\": ["
         (count t) (json_ms (mean t))
         (json_ms (percentile t 0.50))
         (json_ms (percentile t 0.95))
         (json_ms (percentile t 0.99)));
    let first = ref true in
    Array.iteri
      (fun i bk ->
        let c = Atomic.get bk in
        if c > 0 then begin
          if not !first then Buffer.add_string b ", ";
          first := false;
          Buffer.add_string b
            (Printf.sprintf "[%s, %d]"
               (json_ms (bound_s (min i (finite_buckets - 1))))
               c)
        end)
      t.buckets;
    Buffer.add_string b "] }";
    Buffer.contents b
end

type t = {
  submitted : Counter.t;
  completed : Counter.t;
  rejected : Counter.t;
  deadline_missed : Counter.t;
  degraded : Counter.t;
  failed : Counter.t;
  retries : Counter.t;
  cancelled_midflight : Counter.t;
  breaker_trips : Counter.t;
  breaker_shorted : Counter.t;
  plan_hits : Counter.t;
  plan_misses : Counter.t;
  tune_searched : Counter.t;
  tune_cached : Counter.t;
  tune_heuristic : Counter.t;
  jit_used : Counter.t;
  jit_fallback : Counter.t;
  batches : Counter.t;
  batched_requests : Counter.t;
  session_checkpoints : Counter.t;
  session_recoveries : Counter.t;
  session_fastforwards : Counter.t;
  session_migrations : Counter.t;
  steals : Counter.t;
  (* Per-request-kind attribution.  [submitted]/[completed]/[failed]
     above stay the all-kinds totals (existing dashboards keep working);
     the scan_* counters carve out the time-varying scan share, and the
     snapshot derives the constant-coefficient share by subtraction. *)
  scan_submitted : Counter.t;
  scan_completed : Counter.t;
  scan_failed : Counter.t;
  queue_wait : Histogram.t;
  plan_build : Histogram.t;
  exec : Histogram.t;
  total : Histogram.t;
}

let create () =
  {
    submitted = Counter.create ();
    completed = Counter.create ();
    rejected = Counter.create ();
    deadline_missed = Counter.create ();
    degraded = Counter.create ();
    failed = Counter.create ();
    retries = Counter.create ();
    cancelled_midflight = Counter.create ();
    breaker_trips = Counter.create ();
    breaker_shorted = Counter.create ();
    plan_hits = Counter.create ();
    plan_misses = Counter.create ();
    tune_searched = Counter.create ();
    tune_cached = Counter.create ();
    tune_heuristic = Counter.create ();
    jit_used = Counter.create ();
    jit_fallback = Counter.create ();
    batches = Counter.create ();
    batched_requests = Counter.create ();
    session_checkpoints = Counter.create ();
    session_recoveries = Counter.create ();
    session_fastforwards = Counter.create ();
    session_migrations = Counter.create ();
    steals = Counter.create ();
    scan_submitted = Counter.create ();
    scan_completed = Counter.create ();
    scan_failed = Counter.create ();
    queue_wait = Histogram.create ();
    plan_build = Histogram.create ();
    exec = Histogram.create ();
    total = Histogram.create ();
  }

let snapshot_json ?pool ?tuning ?shards t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let counter name c = Printf.sprintf "  \"%s\": %d" name (Counter.get c) in
  let histogram name h = Printf.sprintf "  \"%s\": %s" name (Histogram.to_json h) in
  let fields =
    [
      counter "submitted" t.submitted;
      counter "completed" t.completed;
      counter "rejected_overloaded" t.rejected;
      counter "deadline_missed" t.deadline_missed;
      counter "degraded" t.degraded;
      counter "failed" t.failed;
      counter "retries" t.retries;
      counter "cancelled_midflight" t.cancelled_midflight;
      counter "breaker_trips" t.breaker_trips;
      counter "breaker_shorted" t.breaker_shorted;
      counter "plan_cache_hits" t.plan_hits;
      counter "plan_cache_misses" t.plan_misses;
      counter "tune_searched" t.tune_searched;
      counter "tune_cached" t.tune_cached;
      counter "tune_heuristic" t.tune_heuristic;
      counter "jit_used" t.jit_used;
      counter "jit_fallback" t.jit_fallback;
      counter "batches" t.batches;
      counter "batched_requests" t.batched_requests;
      counter "session_checkpoints" t.session_checkpoints;
      counter "session_recoveries" t.session_recoveries;
      counter "session_fastforwards" t.session_fastforwards;
      counter "session_migrations" t.session_migrations;
      counter "steals" t.steals;
      (let ssub = Counter.get t.scan_submitted
       and scomp = Counter.get t.scan_completed
       and sfail = Counter.get t.scan_failed in
       Printf.sprintf
         "  \"kinds\": { \"recurrence\": { \"submitted\": %d, \
          \"completed\": %d, \"failed\": %d }, \"scan\": { \"submitted\": \
          %d, \"completed\": %d, \"failed\": %d } }"
         (Counter.get t.submitted - ssub)
         (Counter.get t.completed - scomp)
         (Counter.get t.failed - sfail)
         ssub scomp sfail);
      histogram "queue_wait" t.queue_wait;
      histogram "plan_build" t.plan_build;
      histogram "exec" t.exec;
      histogram "total" t.total;
    ]
    @ (match tuning with
      | None | Some "" -> []
      | Some s -> [ Printf.sprintf "  \"tuning\": %S" s ])
    @ (match shards with
      | None | Some "" -> []
      | Some s -> [ Printf.sprintf "  \"shards\": %s" s ])
    @ (match pool with
      | None -> []
      | Some p ->
          let s = Plr_exec.Pool.stats p in
          [
            Printf.sprintf
              "  \"pool\": { \"size\": %d, \"jobs_completed\": %d, \"busy\": %b }"
              s.Plr_exec.Pool.size s.Plr_exec.Pool.jobs_completed
              s.Plr_exec.Pool.busy;
          ])
    @
    (* When the trace sink is live, summarize it: event volume, loss, and
       the top spans by inclusive time (same aggregation as [plr trace]). *)
    if not (Plr_trace.Trace.enabled ()) then []
    else begin
      let events = Plr_trace.Trace.collect () in
      let rows = Plr_trace.Report.rows events in
      [
        Printf.sprintf
          "  \"trace\": { \"events\": %d, \"dropped\": %d, \"spans\": %s }"
          (List.length events)
          (Plr_trace.Trace.dropped ())
          (Plr_trace.Report.to_json ~top:8 rows);
      ]
    end
  in
  Buffer.add_string b (String.concat ",\n" fields);
  Buffer.add_string b "\n}";
  Buffer.contents b
