(** Resilient streaming sessions: sticky recurrence state with periodic
    checkpoints and O(k³ log g) fast-forward recovery.

    A session is the serving layer's stateful filter (the DSP idiom of
    {!Plr_multicore.Stream}): chunks arrive over time, the recurrence
    state (output carries + FIR input tail) flows across calls, and the
    concatenated outputs are exactly one offline pass.  On top of the
    stream mechanics a session adds the fault-recovery protocol of this
    repo's robustness layer:

    - every state word is covered by a {b digest}; a snapshot
      ({!Plr_robust.Companion.Make.Checkpoint}) is taken every
      [checkpoint_every] elements, and the segments processed since live
      in a bounded {b journal};
    - a detected fault — state corruption caught by the digest, a crash,
      or an engine fault caught by chunk verification — triggers
      {b recovery}: restore the last checkpoint and replay only the
      journal, with input-free gaps skipped by companion-matrix powers
      instead of replayed.  Replay runs the exact original code path, so
      the rebuilt state is bit-identical to the unfaulted run's;
    - gaps ({!Make.skip}) fast-forward in O(k³ log g) after a
      [taps - 1]-element warm-up, never materializing the zeros.

    Fault injection ({!Make.inject} / the [?fault] arguments) drives the
    same paths deterministically for the chaos harness; the emitted trace
    spans ([session.checkpoint], [session.recover], [session.ff]) let
    tests prove recovery used checkpoint + fast-forward, not full
    replay. *)

type fault =
  | Crash  (** lose the in-memory state before the next call's work *)
  | Corrupt_state  (** silently flip one live state word *)
  | Engine_fault of int
      (** run the next chunk's engine under the seeded fault plan *)

val fault_to_string : fault -> string

module Make (S : Plr_util.Scalar.S) : sig
  module Companion : module type of Plr_robust.Companion.Make (S)

  type t

  type stats = {
    position : int;  (** elements consumed so far *)
    checkpoints : int;  (** snapshots taken *)
    recoveries : int;  (** checkpoint restorations performed *)
    fastforwards : int;  (** companion skip-aheads (gaps + recoveries) *)
    detected : int;  (** faults detected (digest mismatch or engine) *)
    replayed : int;  (** data elements re-processed across recoveries *)
    migrations : int;  (** pool moves performed by {!migrate} *)
  }

  val create :
    ?pool:Plr_exec.Pool.t ->
    ?domains:int ->
    ?opts:Plr_factors.Opts.t ->
    ?metrics:Metrics.t ->
    ?checkpoint_every:int ->
    ?tol:float ->
    S.t Signature.t -> t
  (** A fresh session in the zero state.  [checkpoint_every] (default
      1024) is the snapshot cadence in elements; [tol] (default 1e-3)
      bounds the faulted-chunk verification for floating scalars (integer
      scalars compare exactly).  [metrics] feeds the serving layer's
      session counters. *)

  val process : ?fault:fault -> t -> S.t array -> S.t array
  (** Filter the next chunk and advance the state.  [fault] injects the
      given fault into this call (identical to {!inject} just before).
      The output — faulted call or not — is exactly the unfaulted
      stream's output for this range: faults are detected and recovered,
      never served. *)

  val skip : ?fault:fault -> t -> int -> unit
  (** [skip t g] consumes a gap of [g] zero inputs without materializing
      them: a [taps - 1] warm-up through the data path, then one
      companion-matrix fast-forward.  An armed [Engine_fault] is consumed
      (a gap runs no engine); state faults are detected as in
      {!process}.  @raise Invalid_argument on a negative gap. *)

  val inject : t -> fault -> unit
  (** Arm [fault] for the next {!process}/{!skip} call. *)

  val migrate : t -> pool:Plr_exec.Pool.t -> unit
  (** Move the session to [pool] (in the serving layer: another shard).
      Sticky sessions are never work-stolen — a move is explicit and
      reuses the recovery path: the last checkpoint is restored and the
      journal replayed on the destination pool, so the rebuilt state is
      bit-identical to the pre-migration state and subsequent outputs
      are unaffected.  A no-op when [pool] is already the session's
      pool.  Counted in {!stats.migrations} (and
      {!Metrics.t.session_migrations} when the session carries metrics);
      emits a [session.migrate] trace span.
      @raise Failure if the last checkpoint fails its digest check. *)

  val checkpoint_now : t -> unit
  (** Force a snapshot at the current position (empties the journal). *)

  val signature : t -> S.t Signature.t
  val position : t -> int

  val carries : t -> S.t array
  (** Copy of the live carries, [carries.(j) = y(pos-1-j)] — for tests
      comparing recovered state against an unfaulted twin. *)

  val stats : t -> stats
end
