module Pool = Plr_exec.Pool
module Cancel = Plr_exec.Cancel
module Trace = Plr_trace.Trace
module Opts = Plr_factors.Opts
module Tune = Plr_core.Tune
module Stability = Plr_robust.Stability
module Guard = Plr_robust.Guard
module Faults = Plr_gpusim.Faults

type error = Overloaded | Deadline_exceeded | Failed of string

let error_to_string = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline exceeded"
  | Failed m -> "failed: " ^ m

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  max_inflight : int;
  cache_capacity : int;
  chunk_size : int;
  parallel_threshold : int;
  batching : bool;
  batch_threshold : int;
  batch_max : int;
  batch_window : float;
  guard : bool;
  check_prefix : int;
  opts : Opts.t;
  retries : int;
  retry_backoff : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  autotune : bool;
  tune_budget : int;
  shards : int;
  steal_threshold : int;
}

let default_config =
  {
    max_inflight = 64;
    cache_capacity = 64;
    chunk_size = 4096;
    parallel_threshold = 16384;
    batching = true;
    batch_threshold = 2048;
    batch_max = 16;
    batch_window = 5e-4;
    guard = true;
    check_prefix = 1024;
    opts = Opts.all_on;
    retries = 2;
    retry_backoff = 1e-3;
    breaker_threshold = 4;
    breaker_cooldown = 5e-2;
    autotune = false;
    tune_budget = 8;
    shards = 1;
    steal_threshold = 2;
  }

(* Signature-affinity routing wants the same key to land on the same
   shard in every process (tests, replays, paired runs), so the router
   hashes the canonical cache-key string itself with FNV-1a rather than
   relying on [Hashtbl.hash]'s unspecified mixing. *)
let fnv1a s =
  (* The 64-bit offset basis, assembled in halves: the literal itself
     does not fit OCaml's 63-bit int.  Wrap-around on the multiply is
     fine — the hash only needs determinism, not the exact FNV value. *)
  let h = ref ((0xcbf29ce4 lsl 32) lor 0x84222325) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let now () = Unix.gettimeofday ()

(* Spin-then-yield wait used by batch followers: cheap while the wait is
   short (the leader's linger window), friendly to oversubscribed
   machines when it is not. *)
let relax_step i =
  if i land 255 = 255 then Unix.sleepf 5e-5 else Domain.cpu_relax ()

module Make (S : Plr_util.Scalar.S) = struct
  module FP = Plr_factors.Factor_plan.Make (S)
  module M = Plr_multicore.Multicore.Make (S)
  module Serial = Plr_serial.Serial.Make (S)
  module G = Guard.Make (S)
  module Session = Session.Make (S)
  module TC = Tune.Cpu (S)
  module Sc = Plr_scan.Scan.Make (S)

  type entry = {
    stability : Stability.report;
    plan : FP.t;
    serial_cutoff : int;
    tuning : Tune.cpu_tuning;
    tuning_source : Tune.cpu_source;
    jit : G.JB.t option;
  }

  (* Time-varying scan requests have no signature to key a factor plan
     on; the cacheable state is the schedule shape, bucketed by request
     length so a steady mix of similar lengths shares one entry. *)
  type scan_entry = { schunk : int; swindow : int }

  (* Per-signature circuit breaker.  [Closed] counts consecutive faulty
     pooled outcomes (guard degradations and failures); at the threshold
     it opens and pooled-path requests short-circuit to the serial
     backend until the cooldown elapses, when a single half-open probe is
     let through — success closes the breaker, failure re-opens it. *)
  type breaker = {
    mutable consecutive : int;
    mutable bstate : [ `Closed | `Open of float (* retry-at *) | `Half_open ];
  }

  type slot = {
    input : S.t array;
    slot_deadline : float option;
    cell : (S.t array, error) result option Atomic.t;
  }

  type batch = {
    sig_ : S.t Signature.t;
    mutable slots : slot list; (* newest first *)
    mutable count : int;
    mutable sealed : bool;
  }

  (* One shard: a private pool, a plan-cache partition (compiled
     factor plans, tunings, and JIT state stay hot per shard), its own
     exec lock, and the queue-depth signal the router and the stealing
     policy read.  The remaining fields are bookkeeping counters for the
     per-shard metrics export. *)
  type shard = {
    sindex : int;
    spool : Pool.t;
    scache : entry Plan_cache.t;
    sscan_cache : scan_entry Plan_cache.t;
    sexec_lock : Mutex.t; (* serializes jobs that occupy this shard's pool *)
    queue_depth : int Atomic.t;
        (* pooled requests queued on or holding [sexec_lock] right now *)
    routed : int Atomic.t; (* requests whose affinity home is this shard *)
    completed_on : int Atomic.t; (* requests whose final [Ok] ran here *)
    pooled_home : int Atomic.t; (* pooled executions that stayed home *)
    steals_in : int Atomic.t;
    steals_out : int Atomic.t;
    migrations_in : int Atomic.t;
  }

  type t = {
    config : config;
    shards_ : shard array; (* length [max 1 config.shards] *)
    owned_pools : bool;
        (* true when [create] built the shard pools itself (shards > 1)
           and [shutdown] should close them *)
    metrics : Metrics.t;
    inflight : int Atomic.t;
    batch_lock : Mutex.t;
    batches : (string, batch) Hashtbl.t;
    breaker_lock : Mutex.t;
    breakers : (string, breaker) Hashtbl.t;
    last_tuning : string Atomic.t;
        (* latest tuning applied by a plan compile, for the metrics
           snapshot's attribution line *)
  }

  let make_shard ~config sindex spool =
    {
      sindex;
      spool;
      scache = Plan_cache.create ~capacity:config.cache_capacity ();
      sscan_cache = Plan_cache.create ~capacity:config.cache_capacity ();
      sexec_lock = Mutex.create ();
      queue_depth = Atomic.make 0;
      routed = Atomic.make 0;
      completed_on = Atomic.make 0;
      pooled_home = Atomic.make 0;
      steals_in = Atomic.make 0;
      steals_out = Atomic.make 0;
      migrations_in = Atomic.make 0;
    }

  let create ?(config = default_config) ?pool ?domains () =
    let nshards = max 1 config.shards in
    let shards_, owned_pools =
      if nshards = 1 then
        (* The single-shard server keeps the historical behaviour: share
           the process-wide registry pool (or the caller's). *)
        let p = match pool with Some p -> p | None -> Pool.get ?domains () in
        ([| make_shard ~config 0 p |], false)
      else begin
        (* N shards need N disjoint pools; the size-keyed [Pool.get]
           registry would alias them into one.  The server creates (and
           owns) private pools — [shutdown] closes them. *)
        if pool <> None then
          invalid_arg "Serve.create: ?pool cannot be shared across shards > 1";
        ( Array.init nshards (fun i ->
              make_shard ~config i (Pool.create ?domains ())),
          true )
      end
    in
    {
      config;
      shards_;
      owned_pools;
      metrics = Metrics.create ();
      inflight = Atomic.make 0;
      batch_lock = Mutex.create ();
      batches = Hashtbl.create 16;
      breaker_lock = Mutex.create ();
      breakers = Hashtbl.create 16;
      last_tuning = Atomic.make "";
    }

  let config t = t.config
  let pool t = t.shards_.(0).spool
  let metrics t = t.metrics
  let shard_count t = Array.length t.shards_

  let shutdown t =
    if t.owned_pools then
      Array.iter (fun sh -> Pool.shutdown sh.spool) t.shards_

  let cache_stats t =
    Array.fold_left
      (fun (h, m, e) sh ->
        ( h + Plan_cache.hits sh.scache,
          m + Plan_cache.misses sh.scache,
          e + Plan_cache.evictions sh.scache ))
      (0, 0, 0) t.shards_

  type shard_stat = {
    shard : int;
    pool_size : int;
    depth : int;
    st_routed : int;
    st_completed : int;
    st_pooled_home : int;
    st_steals_in : int;
    st_steals_out : int;
    st_migrations_in : int;
    st_plan_hits : int;
    st_plan_misses : int;
  }

  let shard_stats t =
    Array.map
      (fun sh ->
        {
          shard = sh.sindex;
          pool_size = Pool.size sh.spool;
          depth = Atomic.get sh.queue_depth;
          st_routed = Atomic.get sh.routed;
          st_completed = Atomic.get sh.completed_on;
          st_pooled_home = Atomic.get sh.pooled_home;
          st_steals_in = Atomic.get sh.steals_in;
          st_steals_out = Atomic.get sh.steals_out;
          st_migrations_in = Atomic.get sh.migrations_in;
          st_plan_hits =
            Plan_cache.hits sh.scache + Plan_cache.hits sh.sscan_cache;
          st_plan_misses =
            Plan_cache.misses sh.scache + Plan_cache.misses sh.sscan_cache;
        })
      t.shards_

  let shards_json t =
    let one st =
      (* Affinity hit rate: pooled executions that ran on their home
         shard, over all pooled executions routed there. *)
      let pooled = st.st_pooled_home + st.st_steals_out in
      let affinity =
        if pooled = 0 then 1.0
        else float_of_int st.st_pooled_home /. float_of_int pooled
      in
      Printf.sprintf
        "{ \"shard\": %d, \"pool_size\": %d, \"queue_depth\": %d, \
         \"routed\": %d, \"completed_on\": %d, \"pooled_home\": %d, \
         \"steals_in\": %d, \"steals_out\": %d, \"migrations_in\": %d, \
         \"affinity_hit_rate\": %.4g, \"plan_hits\": %d, \"plan_misses\": %d }"
        st.shard st.pool_size st.depth st.st_routed st.st_completed
        st.st_pooled_home st.st_steals_in st.st_steals_out
        st.st_migrations_in affinity st.st_plan_hits st.st_plan_misses
    in
    Printf.sprintf "[ %s ]"
      (String.concat ", " (Array.to_list (Array.map one (shard_stats t))))

  let snapshot_json t =
    Metrics.snapshot_json ~pool:(pool t) ~shards:(shards_json t)
      ?tuning:
        (match Atomic.get t.last_tuning with "" -> None | s -> Some s)
      t.metrics

  let floating = S.kind = Plr_util.Scalar.Floating

  (* The canonical key: scalar domain × opts × signature.  [Opts.pp] and
     [Signature.to_string] are both deterministic renderings, so equal
     configurations collide exactly. *)
  let cache_key t (s : S.t Signature.t) =
    Format.asprintf "%s|%a|%s" S.ctype Opts.pp t.config.opts
      (Signature.to_string S.to_string s)

  (* Affinity routing: the canonical key string hashes to a home shard,
     so a signature's plans, tunings, and JIT state concentrate on one
     partition and every process routes identically. *)
  let home_shard t key = t.shards_.(fnv1a key mod Array.length t.shards_)
  let shard_of_signature t s = (home_shard t (cache_key t s)).sindex

  (* Bounded one-hop stealing: only when the home queue is at or over the
     threshold, and only to the shallowest strictly-shallower shard.
     Sticky sessions are exempt — they move via [migrate_session] only. *)
  let pick_exec_shard t home =
    if Array.length t.shards_ = 1 then home
    else begin
      let depth = Atomic.get home.queue_depth in
      if depth < t.config.steal_threshold then home
      else begin
        let best = ref home and best_depth = ref depth in
        Array.iter
          (fun sh ->
            let d = Atomic.get sh.queue_depth in
            if d < !best_depth then begin
              best := sh;
              best_depth := d
            end)
          t.shards_;
        !best
      end
    end

  (* Record the routing outcome for a pooled execution and return the
     shard that will run it.  A steal re-resolves the plan on the thief
     (each shard owns its cache partition), which the callers do. *)
  let note_exec_shard t home exec_sh =
    if exec_sh != home then begin
      Metrics.Counter.incr t.metrics.Metrics.steals;
      Atomic.incr home.steals_out;
      Atomic.incr exec_sh.steals_in;
      Trace.instant Trace.Serve "serve.steal" home.sindex exec_sh.sindex
    end
    else Atomic.incr home.pooled_home

  (* Matches the multicore backend's bound so a cache hit compiles to the
     exact plan the engine would have built for itself. *)
  let cpu_max_period = 64

  let compile_entry t sh ~n (s : S.t Signature.t) =
    let cfg = t.config in
    let k = Signature.order s in
    let stability = Stability.analyze (Signature.map S.to_float s) in
    (* The schedule tuning: a registry hit (or, with [autotune], a
       bounded measured search whose winner lands in the registry) —
       otherwise the serving defaults.  The counters and the snapshot's
       attribution line record which one this entry got. *)
    let tuning, tuning_source =
      if cfg.autotune then
        TC.get_or_search ~opts:cfg.opts ~budget:cfg.tune_budget ~pool:sh.spool
          ~n s
      else
        match Tune.Registry.find (TC.key ~n s) with
        | Some tu -> (tu, Tune.Cached)
        | None ->
            ( {
                Tune.chunk_size = cfg.chunk_size;
                domains = Pool.size sh.spool;
                window =
                  Plr_multicore.Multicore.default_window
                    ~pool_size:(Pool.size sh.spool);
              },
              Tune.Heuristic )
    in
    Metrics.Counter.incr
      (match tuning_source with
      | Tune.Searched -> t.metrics.Metrics.tune_searched
      | Tune.Cached -> t.metrics.Metrics.tune_cached
      | Tune.Heuristic -> t.metrics.Metrics.tune_heuristic);
    Atomic.set t.last_tuning
      (Printf.sprintf "%s (%s)"
         (Tune.cpu_tuning_to_string tuning)
         (Tune.cpu_source_to_string tuning_source));
    (* The plan covers the larger of the serving and tuned chunk sizes,
       so applying the tuning never forces a silent recompile inside
       [Multicore.run]. *)
    let m = max (max 1 k) (max cfg.chunk_size tuning.Tune.chunk_size) in
    let plan =
      FP.of_feedback ~opts:cfg.opts ~max_period:cpu_max_period
        ~feedback:s.Signature.feedback ~m ()
    in
    (* The cached backend choice: a signature whose factors provably
       overflow this scalar's float width gains nothing from the pooled
       path (the guard would skip or degrade it) — pin it to the calling
       domain. *)
    let overflow =
      if S.bytes <= 4 then stability.Stability.overflow_f32
      else stability.Stability.overflow_f64
    in
    let doomed =
      floating
      && stability.Stability.cls = Stability.Unstable
      && overflow <> None
    in
    let serial_cutoff = if doomed then max_int else cfg.parallel_threshold in
    (* The native kernel compiles in the background off the same plan;
       until (unless) it is ready and verified, every dispatch below
       falls through to the portable backends.  [prepare] is [None] —
       and has already traced why — when the JIT is disabled, the
       scalar is unsupported, or no C toolchain exists. *)
    let jit = G.JB.prepare ~mode:`Async ~fplan:plan s in
    { stability; plan; serial_cutoff; tuning; tuning_source; jit }

  let plan_on ?n t sh key s =
    (* [n] sizes the tuning lookup; entries are cached per signature, so
       the first request's length picks the bucket (serving mixes are
       homogeneous per signature in practice).  The default is the first
       pooled length, the path tunings matter for. *)
    let n =
      match n with Some n -> n | None -> t.config.parallel_threshold + 1
    in
    match Plan_cache.find sh.scache key with
    | Some e ->
        Metrics.Counter.incr t.metrics.Metrics.plan_hits;
        (e, true)
    | None ->
        Metrics.Counter.incr t.metrics.Metrics.plan_misses;
        let t0 = now () in
        let e = compile_entry t sh ~n s in
        Metrics.Histogram.observe t.metrics.Metrics.plan_build (now () -. t0);
        Plan_cache.add sh.scache key e;
        (e, false)

  let plan_for ?n t s =
    let key = cache_key t s in
    plan_on ?n t (home_shard t key) key s

  let deadline_passed = function
    | None -> false
    | Some d -> now () > d

  (* -------------------------------------------------- circuit breaker *)

  let breaker_for t key =
    Mutex.lock t.breaker_lock;
    let b =
      match Hashtbl.find_opt t.breakers key with
      | Some b -> b
      | None ->
          let b = { consecutive = 0; bstate = `Closed } in
          Hashtbl.add t.breakers key b;
          b
    in
    Mutex.unlock t.breaker_lock;
    b

  let breaker_state t s =
    let b = breaker_for t (cache_key t s) in
    Mutex.lock t.breaker_lock;
    let s =
      match b.bstate with
      | `Closed -> Closed
      | `Open _ -> Open
      | `Half_open -> Half_open
    in
    Mutex.unlock t.breaker_lock;
    s

  (* Route decision for a pooled-path request: [`Pooled] while closed,
     [`Serial] while open (and while another request's half-open probe is
     in flight), [`Pooled] again for the single probe that finds the
     cooldown expired. *)
  let breaker_route t key =
    let b = breaker_for t key in
    Mutex.lock t.breaker_lock;
    let r =
      match b.bstate with
      | `Closed -> `Pooled
      | `Half_open -> `Serial
      | `Open retry_at ->
          if now () >= retry_at then begin
            b.bstate <- `Half_open;
            `Pooled
          end
          else `Serial
    in
    Mutex.unlock t.breaker_lock;
    r

  let trip t b =
    b.bstate <- `Open (now () +. t.config.breaker_cooldown);
    Metrics.Counter.incr t.metrics.Metrics.breaker_trips;
    Trace.instant Trace.Serve "breaker.trip" b.consecutive 0

  (* Fold a pooled outcome into the breaker.  [`Neutral] outcomes (a
     deadline cut, not an engine verdict) leave the state untouched. *)
  let breaker_report t key verdict =
    match verdict with
    | `Neutral -> ()
    | (`Clean | `Faulty) as v ->
        let b = breaker_for t key in
        Mutex.lock t.breaker_lock;
        (match (b.bstate, v) with
        | `Half_open, `Clean ->
            b.bstate <- `Closed;
            b.consecutive <- 0
        | `Half_open, `Faulty ->
            b.consecutive <- b.consecutive + 1;
            trip t b
        | `Closed, `Clean -> b.consecutive <- 0
        | `Closed, `Faulty ->
            b.consecutive <- b.consecutive + 1;
            if b.consecutive >= t.config.breaker_threshold then trip t b
        | `Open _, _ -> ());
        Mutex.unlock t.breaker_lock

  (* ------------------------------------------------------- execution *)

  let scan_non_finite y =
    if not floating then None
    else begin
      let bad = ref None in
      (try
         Array.iteri
           (fun i v ->
             if not (Float.is_finite (S.to_float v)) then begin
               bad := Some i;
               raise Exit
             end)
           y
       with Exit -> ());
      !bad
    end

  (* Small requests solve on the calling domain: at these lengths the
     chunked protocol cannot win, and the serial evaluation *is* the
     reference the guard would check against.  Only the non-finite scan
     is meaningful on top.  A ready JIT kernel answers first — its
     output is verified bitwise-identical to [Serial.full], so the
     non-finite scan applies unchanged. *)
  let try_jit t jit x =
    match jit with
    | None -> None
    | Some jb -> (
        match G.JB.run jb x with
        | Some y ->
            Metrics.Counter.incr t.metrics.Metrics.jit_used;
            Some y
        | None ->
            Metrics.Counter.incr t.metrics.Metrics.jit_fallback;
            None)

  let exec_local ?jit t s x =
    match
      match try_jit t jit x with
      | Some y -> y
      | None -> Serial.full s x
    with
    | exception e -> Error (Failed (Printexc.to_string e))
    | y -> (
        if not t.config.guard then Ok y
        else
          match scan_non_finite y with
          | None -> Ok y
          | Some i ->
              Error (Failed (Printf.sprintf "non-finite value at index %d" i)))

  let last_violation (o : G.outcome) =
    let rec last acc = function
      | [] -> acc
      | (a : Guard.attempt) :: rest ->
          last (match a.Guard.violation with Some v -> Some v | None -> acc) rest
    in
    match last None o.G.attempts with
    | Some v -> Guard.violation_to_string v
    | None -> "rejected"

  (* Pooled execution returns the serving result plus the breaker verdict:
     [`Clean] for an undegraded success, [`Faulty] for a degradation or
     failure, [`Neutral] for a mid-flight cancellation (the caller's
     deadline, not an engine fault). *)
  let exec_pooled ?faults ?(cancel = Cancel.none) t sh entry s x =
    let cfg = t.config in
    (* The entry's tuning supplies the schedule knobs; its plan was
       compiled to cover the tuned chunk size, so no recompile here. *)
    let chunk_size = max 1 entry.tuning.Tune.chunk_size in
    let window = max 1 entry.tuning.Tune.window in
    (* Injected faults target the portable backend; letting the native
       kernel answer would silently route around the fault site, so
       fault-injected runs (chaos, tests) skip the JIT here.  Chaos
       exercises the JIT path through its own [Jit] target instead. *)
    let jit = if faults = None then entry.jit else None in
    match
      if cfg.guard then begin
        let mc =
          G.multicore_runner ~opts:cfg.opts ?faults ~plan:entry.plan ~cancel
            ~pool:sh.spool ~chunk_size ~window ()
        in
        (* JIT-first under the guard: a ready, verified native kernel
           answers (still subject to the guard's own checks below);
           otherwise the pooled runner does.  Inlined rather than
           [G.jit_runner] so the serving metrics see which branch ran. *)
        let runner sg input =
          match try_jit t jit input with
          | Some y -> y
          | None -> mc sg input
        in
        let o =
          G.run ~check:(Guard.Prefix cfg.check_prefix)
            ~stability:entry.stability runner s x
        in
        if o.G.ok then begin
          if o.G.degraded then Metrics.Counter.incr t.metrics.Metrics.degraded;
          (Ok o.G.output, if o.G.degraded then `Faulty else `Clean)
        end
        else (Error (Failed (last_violation o)), `Faulty)
      end
      else
        match try_jit t jit x with
        | Some y -> (Ok y, `Clean)
        | None -> (
            match
              M.run ~opts:cfg.opts ?faults ~plan:entry.plan ~cancel
                ~pool:sh.spool ~chunk_size ~window s x
            with
            | y -> (Ok y, `Clean)
            | exception Cancel.Cancelled -> raise Cancel.Cancelled
            | exception e -> (Error (Failed (Printexc.to_string e)), `Faulty))
    with
    | r -> r
    | exception Cancel.Cancelled ->
        (* The token fired at a chunk boundary: stop billing the pool and
           report the cut to the client as a missed deadline. *)
        Metrics.Counter.incr t.metrics.Metrics.cancelled_midflight;
        (Error Deadline_exceeded, `Neutral)

  (* Requests that occupy a shard's pool serialize on its [sexec_lock];
     the wait is the request's queue time.  [queue_depth] brackets the
     whole occupancy (queued + executing) — it is the congestion signal
     the router's steal decision reads.  The deadline is re-checked after
     the wait: a request that missed it is dropped before touching the
     pool. *)
  let exec_serialized ~t0 ?deadline t sh f =
    Atomic.incr sh.queue_depth;
    Fun.protect ~finally:(fun () -> Atomic.decr sh.queue_depth) @@ fun () ->
    Trace.begin_span2 Trace.Serve "serve.shard.exec" sh.sindex
      (Atomic.get sh.queue_depth);
    Fun.protect ~finally:Trace.end_span @@ fun () ->
    Trace.begin_span Trace.Serve "serve.queue";
    Mutex.lock sh.sexec_lock;
    Trace.end_span ();
    Metrics.Histogram.observe t.metrics.Metrics.queue_wait (now () -. t0);
    Fun.protect ~finally:(fun () -> Mutex.unlock sh.sexec_lock) @@ fun () ->
    if deadline_passed deadline then Error Deadline_exceeded
    else begin
      let e0 = now () in
      Trace.begin_span Trace.Serve "serve.exec";
      let r = f () in
      Trace.end_span ();
      Metrics.Histogram.observe t.metrics.Metrics.exec (now () -. e0);
      r
    end

  (* -------------------------------------------------------- batching *)

  let fill_slot slot r =
    match Atomic.get slot.cell with
    | Some _ -> ()
    | None -> Atomic.set slot.cell (Some r)

  let run_batch t sh b =
    let slots = Array.of_list (List.rev b.slots) in
    Metrics.Counter.incr t.metrics.Metrics.batches;
    Metrics.Counter.add t.metrics.Metrics.batched_requests (Array.length slots);
    let body i =
      let slot = slots.(i) in
      let r =
        if deadline_passed slot.slot_deadline then Error Deadline_exceeded
        else
          match Serial.full b.sig_ slot.input with
          | exception e -> Error (Failed (Printexc.to_string e))
          | y -> (
              match (t.config.guard, scan_non_finite y) with
              | true, Some i ->
                  Error
                    (Failed (Printf.sprintf "non-finite value at index %d" i))
              | _ -> Ok y)
      in
      fill_slot slot r
    in
    Trace.begin_span2 Trace.Serve "serve.batch" (Array.length slots) 0;
    Fun.protect
      ~finally:(fun () ->
        (* Whatever happened, no follower may be left spinning. *)
        Array.iter
          (fun slot -> fill_slot slot (Error (Failed "batch aborted")))
          slots;
        Trace.end_span ())
    @@ fun () -> Pool.run sh.spool ~tasks:(Array.length slots) body

  let await_slot ~t0 t slot =
    let hard_limit = Float.max 30.0 (1000.0 *. t.config.batch_window) in
    let i = ref 0 in
    let rec wait () =
      match Atomic.get slot.cell with
      | Some r ->
          Metrics.Histogram.observe t.metrics.Metrics.queue_wait (now () -. t0);
          r
      | None ->
          if now () -. t0 > hard_limit then
            Error (Failed "batch leader stalled")
          else begin
            relax_step !i;
            incr i;
            wait ()
          end
    in
    Trace.begin_span Trace.Serve "serve.wait";
    let r = wait () in
    Trace.end_span ();
    r

  let submit_batched ~t0 ?deadline t sh key s x =
    let slot =
      { input = x; slot_deadline = deadline; cell = Atomic.make None }
    in
    Mutex.lock t.batch_lock;
    let role =
      match Hashtbl.find_opt t.batches key with
      | Some b when (not b.sealed) && b.count < t.config.batch_max ->
          b.slots <- slot :: b.slots;
          b.count <- b.count + 1;
          `Follower
      | _ ->
          let b = { sig_ = s; slots = [ slot ]; count = 1; sealed = false } in
          (* Displacing a sealed or full batch is fine: its leader holds
             its own reference and only removes the table binding if it
             still points at that batch. *)
          Hashtbl.replace t.batches key b;
          `Leader b
    in
    Mutex.unlock t.batch_lock;
    match role with
    | `Follower -> await_slot ~t0 t slot
    | `Leader b ->
        (* Linger for followers, then seal, detach, and execute. *)
        let window_end = t0 +. t.config.batch_window in
        let i = ref 0 in
        let full () =
          Mutex.lock t.batch_lock;
          let f = b.count >= t.config.batch_max in
          Mutex.unlock t.batch_lock;
          f
        in
        while (not (full ())) && now () < window_end do
          relax_step !i;
          incr i
        done;
        Mutex.lock t.batch_lock;
        b.sealed <- true;
        (match Hashtbl.find_opt t.batches key with
        | Some b' when b' == b -> Hashtbl.remove t.batches key
        | _ -> ());
        Mutex.unlock t.batch_lock;
        exec_serialized ~t0 t sh (fun () ->
            run_batch t sh b;
            Ok [||])
        |> ignore;
        (match Atomic.get slot.cell with
        | Some r -> r
        | None -> Error (Failed "batch aborted"))

  (* ---------------------------------------------------------- submit *)

  let classify_result t = function
    | Ok _ -> Metrics.Counter.incr t.metrics.Metrics.completed
    | Error Overloaded -> Metrics.Counter.incr t.metrics.Metrics.rejected
    | Error Deadline_exceeded ->
        Metrics.Counter.incr t.metrics.Metrics.deadline_missed
    | Error (Failed _) -> Metrics.Counter.incr t.metrics.Metrics.failed

  (* One admitted attempt: admission control, then routing — batched,
     local-serial, breaker-shorted serial, or pooled (with the breaker
     verdict folded back in and the deadline armed as a mid-flight
     cancellation token).  [home] is the request's affinity shard;
     [served] reports which shard actually executed the attempt (differs
     from [home] exactly when the pooled path stole). *)
  let attempt_once ~t0 ?deadline ?faults ~served t home key s x =
    if Atomic.fetch_and_add t.inflight 1 >= t.config.max_inflight then begin
      Atomic.decr t.inflight;
      Error Overloaded
    end
    else
      Fun.protect ~finally:(fun () -> Atomic.decr t.inflight) @@ fun () ->
      let n = Array.length x in
      let entry, _hit = plan_on ~n t home key s in
      let local () =
        Metrics.Histogram.observe t.metrics.Metrics.queue_wait (now () -. t0);
        let e0 = now () in
        let r =
          exec_local
            ?jit:(if faults = None then entry.jit else None)
            t s x
        in
        Metrics.Histogram.observe t.metrics.Metrics.exec (now () -. e0);
        r
      in
      if deadline_passed deadline then Error Deadline_exceeded
      else if
        t.config.batching && n <= t.config.batch_threshold
        && Pool.size home.spool > 1
      then submit_batched ~t0 ?deadline t home key s x
      else if n <= entry.serial_cutoff then
        if deadline_passed deadline then Error Deadline_exceeded else local ()
      else begin
        match breaker_route t key with
        | `Serial ->
            Metrics.Counter.incr t.metrics.Metrics.breaker_shorted;
            local ()
        | `Pooled ->
            let exec_sh = pick_exec_shard t home in
            note_exec_shard t home exec_sh;
            served := exec_sh;
            (* A stolen request re-resolves its plan on the thief: each
               shard keeps its own cache partition warm. *)
            let entry =
              if exec_sh == home then entry
              else fst (plan_on ~n t exec_sh key s)
            in
            let cancel =
              match deadline with
              | None -> Cancel.none
              | Some d -> Cancel.create ~deadline:d ()
            in
            exec_serialized ~t0 ?deadline t exec_sh (fun () ->
                let r, verdict =
                  exec_pooled ?faults ~cancel t exec_sh entry s x
                in
                breaker_report t key verdict;
                r)
      end

  let retryable = function
    | Error Overloaded | Error (Failed _) -> true
    | Ok _ | Error Deadline_exceeded -> false

  let error_code = function
    | Ok _ -> -1
    | Error Overloaded -> 0
    | Error Deadline_exceeded -> 1
    | Error (Failed _) -> 2

  (* Exponential backoff with deterministic jitter: the delay sequence of
     a given (signature, attempt) pair is reproducible run to run, which
     keeps the chaos campaigns and their pinned tests deterministic. *)
  let backoff_delay t ~key ~attempt =
    let gen =
      Plr_util.Splitmix.create (Hashtbl.hash key lxor ((attempt + 1) * 0x9E3779B9))
    in
    let jitter =
      float_of_int (Plr_util.Splitmix.int_in gen ~lo:0 ~hi:1000) /. 1000.0
    in
    t.config.retry_backoff *. float_of_int (1 lsl attempt) *. (0.5 +. jitter)

  let submit ?deadline ?faults t (s : S.t Signature.t) x =
    let t0 = now () in
    Metrics.Counter.incr t.metrics.Metrics.submitted;
    (* One flow id per request links the request span to the pool tasks
       that execute it (across domains) in the exported trace. *)
    let flow = if Trace.enabled () then Trace.next_flow_id () else 0 in
    Trace.begin_span2 Trace.Serve "serve.request" (Array.length x) flow;
    Trace.flow_start Trace.Serve "serve.flow" flow;
    Trace.set_ambient_flow flow;
    let key = cache_key t s in
    let home = home_shard t key in
    Atomic.incr home.routed;
    Trace.instant Trace.Serve "serve.shard.route" home.sindex
      (Atomic.get home.queue_depth);
    let served = ref home in
    let rec go attempt faults =
      let r = attempt_once ~t0 ?deadline ?faults ~served t home key s x in
      if
        attempt < t.config.retries && retryable r
        && not (deadline_passed deadline)
      then begin
        Metrics.Counter.incr t.metrics.Metrics.retries;
        Trace.instant Trace.Serve "serve.retry" attempt (error_code r);
        let d = backoff_delay t ~key ~attempt in
        let d =
          match deadline with None -> d | Some dl -> min d (dl -. now ())
        in
        if d > 0.0 then Unix.sleepf d;
        (* Injected fault plans model transient faults: they apply to the
           first attempt only, so a retry is a genuinely clean re-run. *)
        go (attempt + 1) None
      end
      else r
    in
    let r = go 0 faults in
    classify_result t r;
    (match r with Ok _ -> Atomic.incr !served.completed_on | Error _ -> ());
    Metrics.Histogram.observe t.metrics.Metrics.total (now () -. t0);
    Trace.set_ambient_flow 0;
    Trace.end_span ();
    r

  let session ?checkpoint_every t s =
    (* Sticky state lives on the signature's home shard — the same place
       plain requests for that signature land. *)
    let home = home_shard t (cache_key t s) in
    Session.create ~pool:home.spool ~opts:t.config.opts ~metrics:t.metrics
      ?checkpoint_every s

  let migrate_session t session ~shard =
    if shard < 0 || shard >= Array.length t.shards_ then
      invalid_arg "Serve.migrate_session: shard index out of range";
    let sh = t.shards_.(shard) in
    let before = (Session.stats session).Session.migrations in
    Session.migrate session ~pool:sh.spool;
    if (Session.stats session).Session.migrations > before then
      Atomic.incr sh.migrations_in

  (* ----------------------------------------- time-varying scan requests *)

  let scan_bucket n =
    let b = ref 1 in
    while !b < n do
      b := !b * 2
    done;
    !b

  let scan_key n = Printf.sprintf "scan|%s|%d" S.ctype (scan_bucket n)

  let scan_entry_for t sh n =
    let entry, hit =
      Plan_cache.find_or_add sh.sscan_cache (scan_key n) (fun () ->
          let domains = Pool.size sh.spool in
          {
            schunk =
              Plr_scan.Scan.default_chunk_size ~domains (scan_bucket n);
            swindow = Plr_scan.Scan.default_window ~pool_size:domains;
          })
    in
    Metrics.Counter.incr
      (if hit then t.metrics.Metrics.plan_hits
       else t.metrics.Metrics.plan_misses);
    entry

  let scan_guarded t y =
    match (t.config.guard, scan_non_finite y) with
    | true, Some i ->
        Error (Failed (Printf.sprintf "non-finite value at index %d" i))
    | _ -> Ok y

  (* One admitted scan attempt: small requests evaluate on the calling
     domain (the serial chain *is* the reference at these lengths); large
     ones take the pooled look-back engine under [exec_lock], with the
     deadline armed as a mid-flight cancellation token.  A carry fault
     the engine detects ({!Plr_scan.Scan.Fault_detected}) degrades to the
     serial evaluator — loud, counted, never silent. *)
  let scan_attempt ~t0 ?deadline ~served t home entry a b =
    if Atomic.fetch_and_add t.inflight 1 >= t.config.max_inflight then begin
      Atomic.decr t.inflight;
      Error Overloaded
    end
    else
      Fun.protect ~finally:(fun () -> Atomic.decr t.inflight) @@ fun () ->
      let n = Array.length a in
      if deadline_passed deadline then Error Deadline_exceeded
      else if n <= t.config.parallel_threshold then begin
        Metrics.Histogram.observe t.metrics.Metrics.queue_wait (now () -. t0);
        let e0 = now () in
        let r =
          match Sc.serial a b with
          | exception e -> Error (Failed (Printexc.to_string e))
          | y -> scan_guarded t y
        in
        Metrics.Histogram.observe t.metrics.Metrics.exec (now () -. e0);
        r
      end
      else begin
        let exec_sh = pick_exec_shard t home in
        note_exec_shard t home exec_sh;
        served := exec_sh;
        let entry =
          if exec_sh == home then entry else scan_entry_for t exec_sh n
        in
        let cancel =
          match deadline with
          | None -> Cancel.none
          | Some d -> Cancel.create ~deadline:d ()
        in
        exec_serialized ~t0 ?deadline t exec_sh (fun () ->
            match
              Sc.run ~cancel ~pool:exec_sh.spool ~chunk_size:entry.schunk
                ~window:entry.swindow a b
            with
            | y -> scan_guarded t y
            | exception Cancel.Cancelled ->
                Metrics.Counter.incr t.metrics.Metrics.cancelled_midflight;
                Error Deadline_exceeded
            | exception Plr_scan.Scan.Fault_detected _ ->
                Metrics.Counter.incr t.metrics.Metrics.degraded;
                (match Sc.serial a b with
                | y -> scan_guarded t y
                | exception e -> Error (Failed (Printexc.to_string e)))
            | exception e -> Error (Failed (Printexc.to_string e)))
      end

  let submit_scan ?deadline t a b =
    let t0 = now () in
    Metrics.Counter.incr t.metrics.Metrics.submitted;
    Metrics.Counter.incr t.metrics.Metrics.scan_submitted;
    let flow = if Trace.enabled () then Trace.next_flow_id () else 0 in
    Trace.begin_span2 Trace.Scan "scan.request" (Array.length a) flow;
    Trace.flow_start Trace.Scan "scan.flow" flow;
    Trace.set_ambient_flow flow;
    let served = ref t.shards_.(0) in
    let r =
      if Array.length a <> Array.length b then
        Error (Failed "coefficient streams differ in length")
      else begin
        let n = Array.length a in
        let key = scan_key n in
        let home = home_shard t key in
        Atomic.incr home.routed;
        Trace.instant Trace.Serve "serve.shard.route" home.sindex
          (Atomic.get home.queue_depth);
        served := home;
        let entry = scan_entry_for t home n in
        let rec go attempt =
          let r = scan_attempt ~t0 ?deadline ~served t home entry a b in
          if
            attempt < t.config.retries && retryable r
            && not (deadline_passed deadline)
          then begin
            Metrics.Counter.incr t.metrics.Metrics.retries;
            Trace.instant Trace.Scan "scan.retry" attempt (error_code r);
            let d = backoff_delay t ~key ~attempt in
            let d =
              match deadline with None -> d | Some dl -> min d (dl -. now ())
            in
            if d > 0.0 then Unix.sleepf d;
            go (attempt + 1)
          end
          else r
        in
        go 0
      end
    in
    classify_result t r;
    (match r with
    | Ok _ ->
        Atomic.incr !served.completed_on;
        Metrics.Counter.incr t.metrics.Metrics.scan_completed
    | Error (Failed _) -> Metrics.Counter.incr t.metrics.Metrics.scan_failed
    | Error _ -> ());
    Metrics.Histogram.observe t.metrics.Metrics.total (now () -. t0);
    Trace.set_ambient_flow 0;
    Trace.end_span ();
    r
end
