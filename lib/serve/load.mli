(** Load generators for the serving layer ([plr serve-bench]): a
    closed loop and an open loop.

    {b Closed loop} ({!Make.run}): [clients] generator domains each run
    a think-time-free loop — draw a signature from the mix (Zipf-skewed
    popularity, so a few signatures dominate — the workload shape that
    makes the plan cache pay), draw a request length, submit with a
    per-request deadline, repeat until the wall budget expires.  A
    closed loop measures {e capacity}: arrivals slow down when the
    server does, so its latency percentiles understate what real
    clients would see under overload.

    {b Open loop} ({!Make.run_open}): arrivals follow a fixed schedule
    ({!open_schedule}) at an offered rate, independent of how fast the
    server answers, and every latency is measured from the request's
    {e intended arrival instant} — not from when a generator got around
    to submitting it.  This is the coordinated-omission fix: when the
    server stalls, the requests that should have arrived during the
    stall still count, and their queueing delay lands in the
    percentiles.  Open-loop results also report {e goodput}: completed
    requests that met the SLO, per second.

    Inputs are pre-generated per (signature, length) pair so the loops
    measure the server, not the RNG. *)

type spec = { name : string; weight : float }
(** One mix component and its (unnormalized) Zipf weight. *)

type result = {
  mode : string;  (** ["closed"] or ["open"] *)
  duration : float;  (** wall seconds the loop actually ran *)
  clients : int;
  requests : int;  (** submitted *)
  ok : int;
  rejected : int;
  deadline_missed : int;
  failed : int;
  degraded : int;
  plan_hits : int;
  plan_misses : int;
  batches : int;
  batched_requests : int;
  throughput : float;  (** completed requests per second *)
  offered_rps : float;  (** open loop: the scheduled arrival rate; else 0 *)
  slo_ms : float option;  (** open loop: the latency SLO; else [None] *)
  under_slo : int;
      (** completions within the SLO, measured from intended arrival
          (closed loop: all completions — no schedule to measure from) *)
  goodput : float;  (** [under_slo / duration], per second *)
  shards : int;  (** server shards ({!Serve.Make.shard_count}) *)
  steals : int;  (** work-stealing executions ({!Metrics.t.steals}) *)
  session_migrations : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
      (** open loop: measured from intended arrival; closed loop: the
          server's submit-to-response histogram *)
  mix : spec list;  (** the signature mix actually used *)
  metrics_json : string;  (** full {!Serve.Make.snapshot_json} export *)
}

val zipf_weights : s:float -> int -> float array
(** [zipf_weights ~s n]: weight [1/(rank+1)^s] for each of [n] ranks —
    rank 0 is the most popular.  [s = 0] is uniform. *)

val open_schedule :
  seed:int ->
  rps:float ->
  seconds:float ->
  nsig:int ->
  nsizes:int ->
  zipf:float ->
  unit ->
  (float * int * int) array
(** The open-loop arrival schedule: [round (rps · seconds)] (at least 1)
    entries [(offset_s, signature_index, size_index)], request [i] due
    at [i/rps] seconds after the run starts, signatures Zipf-drawn and
    sizes uniform from one seeded generator.  A pure function of its
    arguments: the same seed replays the identical workload, which is
    what makes paired A/B serving runs comparable.
    @raise Invalid_argument on [rps <= 0], [nsig <= 0], or
    [nsizes <= 0]. *)

val render : Format.formatter -> result -> unit
(** Human-readable report. *)

val to_json : ?meta:string -> result -> string
(** The BENCH_SERVE.json payload: [{"schema": "plr-serve-bench-2",
    "meta": …, …}].  [meta] is a pre-rendered JSON object (see
    {!Plr_bench.Meta}); omitted when not given. *)

val write_json : path:string -> ?meta:string -> result -> unit

module Make (S : Plr_util.Scalar.S) : sig
  val run :
    ?clients:int ->
    ?seconds:float ->
    ?zipf:float ->
    ?sizes:int array ->
    ?deadline_ms:float ->
    ?seed:int ->
    server:Serve.Make(S).t ->
    (string * S.t Signature.t) list ->
    result
  (** [run ~server mix] drives the closed loop.  [clients] (default 4)
      generator domains; [seconds] (default 2.0) wall budget; [zipf]
      (default 1.1) popularity skew over the mix in the given order;
      [sizes] (default [[| 512; 1024; 4096; 32768 |]]) request lengths,
      drawn uniformly; [deadline_ms] (default 250) per-request deadline;
      [seed] makes the draw sequences reproducible.  The mix must be
      non-empty. *)

  val run_open :
    ?clients:int ->
    ?rps:float ->
    ?seconds:float ->
    ?zipf:float ->
    ?sizes:int array ->
    ?deadline_ms:float ->
    ?slo_ms:float ->
    ?seed:int ->
    server:Serve.Make(S).t ->
    (string * S.t Signature.t) list ->
    result
  (** [run_open ~server mix] drives the open loop against the schedule
      [open_schedule ~seed ~rps ~seconds ~nsig ~nsizes ~zipf ()].
      [clients] (default 4) worker domains share the schedule (they are
      transport, not the arrival process: a late worker submits
      immediately rather than skipping, and the lateness is charged to
      the request); [rps] (default 500) offered arrival rate; [slo_ms]
      (default 50) the goodput SLO; each request's deadline is
      [intended_arrival + deadline_ms].  Latency percentiles and the SLO
      check are measured from intended arrival.  The mix must be
      non-empty and [rps > 0]. *)
end
