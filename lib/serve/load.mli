(** Closed-loop load generator for the serving layer ([plr serve-bench]).

    [clients] generator domains each run a closed loop: draw a signature
    from the mix (Zipf-skewed popularity, so a few signatures dominate —
    the workload shape that makes the plan cache pay), draw a request
    length, submit with a per-request deadline, repeat until the wall
    budget expires.  Inputs are pre-generated per (signature, length)
    pair so the loop measures the server, not the RNG.

    Throughput and the latency percentiles are read back from the
    server's {!Metrics} after the run. *)

type spec = { name : string; weight : float }
(** One mix component and its (unnormalized) Zipf weight. *)

type result = {
  duration : float;  (** wall seconds the loop actually ran *)
  clients : int;
  requests : int;  (** submitted *)
  ok : int;
  rejected : int;
  deadline_missed : int;
  failed : int;
  degraded : int;
  plan_hits : int;
  plan_misses : int;
  batches : int;
  batched_requests : int;
  throughput : float;  (** completed requests per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  mix : spec list;  (** the signature mix actually used *)
  metrics_json : string;  (** full {!Serve.Make.snapshot_json} export *)
}

val zipf_weights : s:float -> int -> float array
(** [zipf_weights ~s n]: weight [1/(rank+1)^s] for each of [n] ranks —
    rank 0 is the most popular.  [s = 0] is uniform. *)

val render : Format.formatter -> result -> unit
(** Human-readable report. *)

val to_json : ?meta:string -> result -> string
(** The BENCH_SERVE.json payload: [{"schema": "plr-serve-bench-1",
    "meta": …, …}].  [meta] is a pre-rendered JSON object (see
    {!Plr_bench.Meta}); omitted when not given. *)

val write_json : path:string -> ?meta:string -> result -> unit

module Make (S : Plr_util.Scalar.S) : sig
  val run :
    ?clients:int ->
    ?seconds:float ->
    ?zipf:float ->
    ?sizes:int array ->
    ?deadline_ms:float ->
    ?seed:int ->
    server:Serve.Make(S).t ->
    (string * S.t Signature.t) list ->
    result
  (** [run ~server mix] drives the closed loop.  [clients] (default 4)
      generator domains; [seconds] (default 2.0) wall budget; [zipf]
      (default 1.1) popularity skew over the mix in the given order;
      [sizes] (default [[| 512; 1024; 4096; 32768 |]]) request lengths,
      drawn uniformly; [deadline_ms] (default 250) per-request deadline;
      [seed] makes the draw sequences reproducible.  The mix must be
      non-empty. *)
end
