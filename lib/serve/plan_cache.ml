(* LRU via a tick-stamped hash table: each entry carries the logical time
   of its last touch and eviction scans for the minimum.  The scan is
   O(capacity), which for a plan cache (tens of signatures, each worth
   O(ck²) recompilation) is far below the cost it saves; in exchange the
   structure is a single Hashtbl with no intrusive list to get wrong
   under contention. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(capacity = 64) () =
  let cap = max 1 capacity in
  {
    lock = Mutex.create ();
    table = Hashtbl.create (2 * cap);
    cap;
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let capacity t = t.cap
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          touch t e;
          Atomic.incr t.hits;
          Some e.value
      | None ->
          Atomic.incr t.misses;
          None)

(* Caller holds the lock. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, age) when e.last_used >= age -> ()
      | _ -> victim := Some (key, e.last_used))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      Atomic.incr t.evictions
  | None -> ()

let add t key value =
  with_lock t (fun () ->
      Hashtbl.remove t.table key;
      while Hashtbl.length t.table >= t.cap do
        evict_lru t
      done;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.table key { value; last_used = t.tick })

let find_or_add t key fill =
  match find t key with
  | Some v -> (v, true)
  | None ->
      let v = fill () in
      add t key v;
      (v, false)

let clear t = with_lock t (fun () -> Hashtbl.reset t.table)
