(** The concurrent serving layer: many clients, [config.shards]
    independent shards.

    [Serve.Make (S)] turns the existing engines into a multi-client
    service.  The server is an array of {b shards}; each shard owns a
    private domain pool, a plan-cache partition, and an execution queue.
    Requests route to a {b home shard} by a stable FNV-1a hash of their
    canonical cache key (signature × options × scalar), so a signature's
    compiled plans, measured tunings, and JIT kernels concentrate on one
    partition and stay hot.  When a home shard's queue depth reaches
    [config.steal_threshold] and another shard's queue is strictly
    shallower, the pooled execution is {b stolen} by the shallowest
    shard (re-resolving its plan there); sticky sessions are never
    stolen — they move only through the explicit
    {!Make.migrate_session}, which replays state via the checkpoint
    recovery path.  The default [shards = 1] preserves the historical
    single-pool behaviour exactly.

    Each {!Make.submit} call

    + passes {b admission control}: beyond [max_inflight] concurrently
      admitted requests the call is rejected with {!Overloaded} instead
      of queuing without bound;
    + resolves its {b compiled plan} through an LRU {!Plan_cache} keyed
      by canonicalized signature × {!Plr_factors.Opts.t} × scalar domain.
      A hit reuses the compiled {!Plr_factors.Factor_plan}, the
      {!Plr_robust.Stability} verdict, and the tuned chunk-size/backend
      choice; only a miss pays the O(ck²) precomputation;
    + honours its {b deadline}: a request whose absolute deadline passes
      before execution starts is cut with {!Deadline_exceeded} (never
      started, so it cannot occupy the pool);
    + may be {b batched}: small same-signature requests that arrive
      within the batch window are fused into one pool job (one task per
      request, each evaluated against the exact serial reference), which
      amortizes pool wake-up across the batch;
    + executes {b guarded} (when [guard] is on): the parallel engine runs
      under {!Plr_robust.Guard} with the cached stability report, so a
      poisoned request degrades to a fallback stage instead of wedging a
      pool worker or returning silent garbage.

    Every step feeds the {!Metrics} core; {!Make.snapshot_json} exports
    the counters, latency histograms, and pool utilization in one JSON
    object.

    Concurrency model: [submit] is safe to call from any number of
    domains.  Requests that need the pool serialize on one internal
    mutex (the wait is recorded as queue time); small requests execute
    on the calling domain and bypass that lock entirely. *)

module Pool = Plr_exec.Pool
module Opts = Plr_factors.Opts
module Stability = Plr_robust.Stability
module Faults = Plr_gpusim.Faults

type error =
  | Overloaded  (** rejected by admission control; retry later *)
  | Deadline_exceeded
      (** deadline passed before execution started, or fired mid-flight
          and cancelled the run at a chunk boundary *)
  | Failed of string  (** engine error, or the guard's last stage failed *)

val error_to_string : error -> string

type breaker_state = Closed | Open | Half_open
(** Per-signature circuit-breaker state: [Closed] counts consecutive
    faulty pooled outcomes, [Open] short-circuits the pooled path to the
    serial backend until the cooldown elapses, [Half_open] admits exactly
    one probe whose outcome closes or re-opens the breaker. *)

val breaker_state_to_string : breaker_state -> string

type config = {
  max_inflight : int;
      (** admission bound: concurrently admitted requests beyond this are
          rejected with {!Overloaded} (default 64) *)
  cache_capacity : int;  (** plan-cache entries (default 64) *)
  chunk_size : int;
      (** serving chunk size; the cached factor plan is compiled once with
          this many factors per list and reused for every request length
          (default 4096) *)
  parallel_threshold : int;
      (** inputs longer than this use the pooled engine; at or below it
          the request solves on the calling domain (default 16384) *)
  batching : bool;  (** fuse small same-signature requests (default true) *)
  batch_threshold : int;
      (** inputs of at most this length are batchable (default 2048) *)
  batch_max : int;  (** requests fused into one batch at most (default 16) *)
  batch_window : float;
      (** seconds a batch leader lingers for followers (default 500us) *)
  guard : bool;
      (** wrap pooled execution in {!Plr_robust.Guard} (default true) *)
  check_prefix : int;
      (** guard reference-prefix length (default 1024) *)
  opts : Opts.t;  (** factor specializations (default {!Opts.all_on}) *)
  retries : int;
      (** bounded retries after a retryable error ({!Overloaded} or
          {!Failed}); 0 disables (default 2) *)
  retry_backoff : float;
      (** base of the exponential backoff between retries, in seconds;
          the delay for attempt [a] is [retry_backoff · 2^a · (0.5 + j)]
          with deterministic jitter [j ∈ \[0, 1)] (default 1 ms) *)
  breaker_threshold : int;
      (** consecutive faulty pooled outcomes that trip the per-signature
          circuit breaker (default 4) *)
  breaker_cooldown : float;
      (** seconds an open breaker short-circuits to the serial backend
          before admitting a half-open probe (default 50 ms) *)
  autotune : bool;
      (** run a bounded measured {!Plr_core.Tune.Cpu} search on a
          plan-cache miss with no cached tuning, persisting the winner
          in the process-wide {!Plr_core.Tune.Registry}; off by default
          (the heuristics — or a previously cached tuning — are used
          instead).  Tunings only reshape the schedule, never the
          computed values. *)
  tune_budget : int;
      (** candidate configurations an autotune search may measure
          (default 8) *)
  shards : int;
      (** independent shards (pool + plan-cache partition + queue) the
          server runs; 1 (the default) shares the registry pool and
          keeps the historical single-pool behaviour, [> 1] creates
          that many private pools owned by the server (close them with
          {!Make.shutdown}) *)
  steal_threshold : int;
      (** home-shard queue depth at which a pooled request may be
          stolen by the shallowest strictly-shallower shard (default
          2); irrelevant when [shards = 1] *)
}

val default_config : config

module Make (S : Plr_util.Scalar.S) : sig
  type t

  type entry = {
    stability : Stability.report;
    plan : Plr_factors.Factor_plan.Make(S).t;
        (** compiled with [max config.chunk_size tuning.chunk_size]
            factors per list, so applying the tuning never recompiles *)
    serial_cutoff : int;
        (** request lengths at or below this execute on the calling
            domain — the cached backend choice ([max_int] when the
            stability verdict predicts the parallel path is doomed) *)
    tuning : Plr_core.Tune.cpu_tuning;
        (** the schedule knobs pooled execution uses: a cached or
            freshly searched measured tuning, else the serving
            defaults *)
    tuning_source : Plr_core.Tune.cpu_source;
    jit : Plr_jit.Backend.Make(S).t option;
        (** the per-signature native kernel, compiling asynchronously
            off the same plan; [None] when the JIT is disabled, the
            scalar is unsupported, or no C toolchain exists.  Dispatch
            treats it as opportunistic: any non-ready state falls back
            to the portable backends (counted by
            {!Metrics.t.jit_fallback}). *)
  }

  val create : ?config:config -> ?pool:Pool.t -> ?domains:int -> unit -> t
  (** With [config.shards = 1] (the default), [pool] defaults to the
      {!Pool.get} registry pool for [domains].  With [config.shards > 1]
      the server creates one private [domains]-sized pool per shard and
      owns them — call {!shutdown} when done.
      @raise Invalid_argument if [pool] is given alongside
      [config.shards > 1] (one shared pool contradicts sharding). *)

  val shutdown : t -> unit
  (** Close the shard pools this server created ([config.shards > 1]).
      A no-op on servers sharing the registry pool or a caller's pool.
      The server must be idle; submitting after shutdown is an error. *)

  val config : t -> config
  val pool : t -> Pool.t
  (** Shard 0's pool (the only pool when [shards = 1]). *)

  val metrics : t -> Metrics.t

  val shard_count : t -> int
  (** [max 1 config.shards]. *)

  val shard_of_signature : t -> S.t Signature.t -> int
  (** The signature's home shard index under affinity routing — stable
      across processes (FNV-1a of the canonical cache key). *)

  type shard_stat = {
    shard : int;  (** shard index *)
    pool_size : int;
    depth : int;  (** pooled requests queued or executing right now *)
    st_routed : int;  (** requests whose affinity home is this shard *)
    st_completed : int;  (** requests whose final [Ok] executed here *)
    st_pooled_home : int;  (** pooled executions that stayed home *)
    st_steals_in : int;  (** pooled executions stolen {e to} this shard *)
    st_steals_out : int;  (** pooled executions stolen {e from} it *)
    st_migrations_in : int;  (** sessions migrated onto this shard *)
    st_plan_hits : int;  (** this partition's plan-cache hits (both kinds) *)
    st_plan_misses : int;
  }

  val shard_stats : t -> shard_stat array
  (** One row per shard.  Invariants under a quiescent server:
      [Σ st_routed] = all validly-routed submissions, [Σ st_completed] =
      {!Metrics.t.completed}, and [Σ st_steals_in = Σ st_steals_out =]
      {!Metrics.t.steals}. *)


  val cache_key : t -> S.t Signature.t -> string
  (** The canonical cache key: scalar domain, factor options, and the
      signature's coefficients rendered canonically. *)

  val plan_for : ?n:int -> t -> S.t Signature.t -> entry * bool
  (** [(entry, hit)]: the cached (or freshly compiled) plan entry for
      this signature.  Exposed for tests and warm-up; [submit] calls it
      on every request.  [n] (default just past the parallel threshold)
      sizes the tuning lookup on a miss; hits return the entry — and
      the tuning — compiled for the first request's length. *)

  val submit :
    ?deadline:float -> ?faults:Faults.plan -> t -> S.t Signature.t ->
    S.t array -> (S.t array, error) result
  (** Serve one request.  [deadline] is an absolute [Unix.gettimeofday]
      instant, enforced both before execution starts and — through a
      cooperative cancellation token polled at chunk boundaries — while
      the pooled engine runs.  On [Ok y], [y] is the full recurrence
      output, identical to the serial reference (bitwise for integer
      scalars; within the guard's tolerance for floating ones, and
      bitwise on every path that does not degrade).

      Retryable errors ({!Overloaded}, {!Failed}) are retried up to
      [config.retries] times with exponential backoff and deterministic
      jitter; a passed deadline stops retrying.  [faults] injects a
      deterministic engine fault plan into the pooled path (the chaos
      harness's front door); it models a transient fault and applies to
      the first attempt only. *)

  val breaker_state : t -> S.t Signature.t -> breaker_state
  (** The signature's circuit-breaker state right now. *)

  val cache_stats : t -> int * int * int
  (** [(hits, misses, evictions)] of the plan cache. *)

  val snapshot_json : t -> string
  (** {!Metrics.snapshot_json} with this server's pool stats, the
      per-shard stat rows (queue depth, steals in/out, migrations,
      affinity hit rate), and the most recently applied schedule tuning
      (with its source) included. *)

  module Session : module type of Session.Make (S)

  val session : ?checkpoint_every:int -> t -> S.t Signature.t -> Session.t
  (** A sticky streaming session on the signature's home shard (the
      server's pool, options, and metrics) — see
      {!Session.Make.create}. *)

  val migrate_session : t -> Session.t -> shard:int -> unit
  (** Explicitly move a sticky session to [shard]'s pool — the only way
      session state changes shards (work stealing skips sessions).  The
      move reuses the recovery path (checkpoint restore + journal replay
      on the destination pool), so it is state-preserving by
      construction: outputs after the move are bitwise what they would
      have been without it.  A no-op when the session is already there.
      @raise Invalid_argument on an out-of-range shard index. *)

  val submit_scan :
    ?deadline:float -> t -> S.t array -> S.t array -> (S.t array, error) result
  (** [submit_scan t a b] serves one time-varying recurrence request
      [y[i] = a[i]*y[i-1] + b[i]] through {!Plr_scan.Scan}.  The request
      lifecycle mirrors {!submit}: admission control against
      [config.max_inflight], deadlines enforced before execution and
      mid-flight at chunk boundaries, retries with deterministic backoff,
      the shared latency histograms, and per-kind attribution in the
      metrics snapshot ({!Metrics.t.scan_submitted} etc.).  Schedule
      knobs come from a scan-specific plan-cache entry bucketed by
      request length.  Requests at or below [config.parallel_threshold]
      evaluate serially on the calling domain; larger ones run the
      pooled look-back engine, and an engine-detected carry fault
      degrades — loudly, counted in {!Metrics.t.degraded} — to the
      serial evaluator. *)
end
