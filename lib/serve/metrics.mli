(** Cheap, lock-free metrics for the serving layer.

    Counters are single atomics; histograms are fixed arrays of atomic
    bucket counters over log2-spaced latency bounds, so [observe] is a
    couple of atomic increments on the request hot path — no allocation,
    no locking, safe from any domain.  Snapshots are read with plain
    atomic loads and are therefore only instantaneously consistent, which
    is all a monitoring export needs. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Histogram : sig
  type t

  val create : unit -> t
  (** Buckets are powers of two of a microsecond: the first upper bound
      is 1us, the last finite bound is [2^25]us (≈ 34 s); anything slower
      lands in a final overflow bucket. *)

  val observe : t -> float -> unit
  (** Record one latency, in seconds. *)

  val count : t -> int
  (** Observations so far. *)

  val mean : t -> float
  (** Mean of the exact observed values (tracked separately from the
      buckets), in seconds.  0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile h q] for [q] in [0, 1]: the upper bound, in seconds, of
      the first bucket at which the cumulative count reaches [q] of the
      total — i.e. a conservative (rounded-up) quantile.  0 when empty. *)

  val to_json : t -> string
  (** [{"count": …, "mean_ms": …, "p50_ms": …, "p95_ms": …, "p99_ms": …,
      "buckets": [[upper_bound_ms, count], …]}] with zero-count buckets
      omitted. *)
end

type t = {
  submitted : Counter.t;      (** requests entering {!Serve.Make.submit} *)
  completed : Counter.t;      (** requests that returned [Ok] *)
  rejected : Counter.t;       (** admission-control [Overloaded] rejections *)
  deadline_missed : Counter.t;(** requests cut by their deadline *)
  degraded : Counter.t;       (** guard accepted a fallback stage's output *)
  failed : Counter.t;         (** engine errors / guard gave up *)
  retries : Counter.t;        (** retry attempts after a retryable error *)
  cancelled_midflight : Counter.t;
      (** pooled executions aborted at a chunk boundary by a deadline that
          fired after the run started *)
  breaker_trips : Counter.t;  (** circuit-breaker transitions to open *)
  breaker_shorted : Counter.t;
      (** requests short-circuited to the serial backend by an open
          breaker *)
  plan_hits : Counter.t;      (** plan-cache lookups served from cache *)
  plan_misses : Counter.t;    (** lookups that compiled a fresh plan *)
  tune_searched : Counter.t;
      (** plan compiles that ran a measured autotuner search *)
  tune_cached : Counter.t;
      (** plan compiles that reused a tuning from the registry *)
  tune_heuristic : Counter.t;
      (** plan compiles that fell back to the built-in heuristics *)
  jit_used : Counter.t;
      (** executions answered by the native JIT kernel *)
  jit_fallback : Counter.t;
      (** executions where a compiled entry's JIT declined (still
          building, build failed, poisoned) and the portable backend
          answered instead *)
  batches : Counter.t;        (** fused batch executions *)
  batched_requests : Counter.t; (** requests served through a fused batch *)
  session_checkpoints : Counter.t; (** session state snapshots taken *)
  session_recoveries : Counter.t;  (** session checkpoint restorations *)
  session_fastforwards : Counter.t;
      (** companion-matrix skip-aheads (gap processing and recovery) *)
  session_migrations : Counter.t;
      (** sticky sessions moved to another shard's pool (checkpoint +
          journal replay on the destination) *)
  steals : Counter.t;
      (** pooled requests executed on a shard other than their affinity
          home because the home queue exceeded the steal threshold *)
  scan_submitted : Counter.t;
      (** time-varying scan requests entering {!Serve.Make.submit_scan};
          also counted in [submitted], so the constant-coefficient share
          is the difference *)
  scan_completed : Counter.t; (** scan requests that returned [Ok] *)
  scan_failed : Counter.t;    (** scan requests that returned [Failed] *)
  queue_wait : Histogram.t;   (** admission to execution start *)
  plan_build : Histogram.t;   (** plan-cache miss fill time *)
  exec : Histogram.t;         (** backend execution time *)
  total : Histogram.t;        (** submit to response, the client view *)
}

val create : unit -> t

val snapshot_json :
  ?pool:Plr_exec.Pool.t -> ?tuning:string -> ?shards:string -> t -> string
(** One JSON object with every counter, every histogram, a ["kinds"]
    block attributing submitted/completed/failed to the request kind
    (["recurrence"] = the all-kinds totals minus the scan share,
    ["scan"] = the scan_* counters), and — when
    [pool] is given — the pool's {!Plr_exec.Pool.stats}.  [shards]
    (when non-empty) is a pre-rendered JSON array of per-shard stat
    objects (queue depth, steals in/out, migrations, affinity hit rate —
    see {!Serve.Make.shard_stats}) echoed as a ["shards"] field.  [tuning]
    (when non-empty) is echoed as a ["tuning"] field: the active
    schedule tuning and its source (cached | searched |
    heuristic-fallback), so serve-bench snapshots are attributable to
    the configuration that produced them.  When the
    {!Plr_trace.Trace} sink is enabled the snapshot also carries a
    ["trace"] block: total recorded events, events dropped to full
    rings, and the top spans by inclusive time as produced by
    {!Plr_trace.Report.to_json}. *)
