module Splitmix = Plr_util.Splitmix
module Faults = Plr_gpusim.Faults
module S = Plr_util.Scalar.Int
module Serve_ = Serve.Make (S)
module Session_ = Session.Make (S)
module Serial = Plr_serial.Serial.Make (S)

type summary = {
  trials : int;
  faults_injected : int;
  recoveries : int;
  fastforwards : int;
  checkpoints : int;
  retries : int;
  breaker_trips : int;
  steals : int;
  migrations : int;
  bitwise_ok : int;
  failures : (int * string) list;
}

let ok s = s.failures = []

let empty trials =
  {
    trials;
    faults_injected = 0;
    recoveries = 0;
    fastforwards = 0;
    checkpoints = 0;
    retries = 0;
    breaker_trips = 0;
    steals = 0;
    migrations = 0;
    bitwise_ok = 0;
    failures = [];
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d trials (%d with injected faults): %d bitwise-identical, %d \
     recoveries, %d fast-forwards, %d checkpoints, %d retries, %d breaker \
     trips, %d steals, %d migrations, %d failures"
    s.trials s.faults_injected s.bitwise_ok s.recoveries s.fastforwards
    s.checkpoints s.retries s.breaker_trips s.steals s.migrations
    (List.length s.failures);
  List.iter
    (fun (seed, msg) -> Format.fprintf ppf "@,  seed %d: %s" seed msg)
    s.failures

(* Campaigns run over the integer scalar on purpose: native wrap-around
   makes every engine path — pooled, serial, recovered, fast-forwarded —
   a computation in the same commutative ring, so "recovered correctly"
   is checkable as bitwise equality, with no tolerance to hide behind. *)

let random_signature gen =
  let k = Splitmix.int_in gen ~lo:1 ~hi:3 in
  let taps = Splitmix.int_in gen ~lo:1 ~hi:3 in
  (* Signature.create requires the trailing coefficient of each side to
     be non-zero (otherwise the order/tap count would lie). *)
  let nonzero_last len lo hi =
    Array.init len (fun i ->
        let v = Splitmix.int_in gen ~lo ~hi in
        S.of_int (if i = len - 1 && v = 0 then 1 else v))
  in
  let feedback = nonzero_last k (-2) 2 in
  let forward = nonzero_last taps (-3) 3 in
  Signature.create ~is_zero:S.is_zero ~forward ~feedback

type seg = Data of int | Gap of int

let random_segments gen =
  let n = Splitmix.int_in gen ~lo:3 ~hi:8 in
  List.init n (fun _ ->
      if Splitmix.int_in gen ~lo:0 ~hi:3 = 0 then
        Gap (Splitmix.int_in gen ~lo:5 ~hi:300)
      else Data (Splitmix.int_in gen ~lo:1 ~hi:80))

let random_fault gen =
  match Splitmix.int_in gen ~lo:0 ~hi:2 with
  | 0 -> Session.Crash
  | 1 -> Session.Corrupt_state
  | _ -> Session.Engine_fault (Splitmix.int_in gen ~lo:0 ~hi:1_000_000)

(* One session trial: a random signature streamed in random segments
   (data chunks and zero-input gaps) with one fault injected mid-stream,
   checked bitwise against one offline serial pass over the whole
   input. *)
let session_trial ?pool ?domains ~checkpoint_every seed =
  let gen = Splitmix.create seed in
  let s = random_signature gen in
  let segs = random_segments gen in
  let nsegs = List.length segs in
  let fault_at = Splitmix.int_in gen ~lo:1 ~hi:(nsegs - 1) in
  let fault_kind = random_fault gen in
  let data =
    List.map
      (function
        | Gap g -> (Array.make g S.zero, true)
        | Data len ->
            ( Array.init len (fun _ ->
                  S.of_int (Splitmix.int_in gen ~lo:(-9) ~hi:9)),
              false ))
      segs
  in
  let full = Array.concat (List.map fst data) in
  let expected = Serial.full s full in
  let session =
    Session_.create ?pool ?domains ~checkpoint_every s
  in
  let pos = ref 0 in
  let bad = ref None in
  List.iteri
    (fun i (x, is_gap) ->
      let fault = if i = fault_at then Some fault_kind else None in
      if is_gap then begin
        Session_.skip ?fault session (Array.length x);
        pos := !pos + Array.length x
      end
      else begin
        let y = Session_.process ?fault session x in
        Array.iteri
          (fun j v ->
            if !bad = None && not (S.equal v expected.(!pos + j)) then
              bad :=
                Some
                  (Printf.sprintf
                     "segment %d diverged at absolute index %d (fault %s)" i
                     (!pos + j)
                     (Session.fault_to_string fault_kind)))
          y;
        pos := !pos + Array.length x
      end)
    data;
  let st = Session_.stats session in
  (st, fault_kind, !bad)

let session_campaign ?pool ?domains ?(trials = 200) ?(checkpoint_every = 64)
    ~seed () =
  let acc = ref (empty trials) in
  for i = 0 to trials - 1 do
    let trial_seed = seed + i in
    let a = !acc in
    match session_trial ?pool ?domains ~checkpoint_every trial_seed with
    | st, _fault, bad ->
        acc :=
          {
            a with
            faults_injected = a.faults_injected + 1;
            recoveries = a.recoveries + st.Session_.recoveries;
            fastforwards = a.fastforwards + st.Session_.fastforwards;
            checkpoints = a.checkpoints + st.Session_.checkpoints;
            bitwise_ok = (a.bitwise_ok + if bad = None then 1 else 0);
            failures =
              (match bad with
              | None -> a.failures
              | Some msg -> (trial_seed, msg) :: a.failures);
          }
    | exception e ->
        acc :=
          { a with failures = (trial_seed, Printexc.to_string e) :: a.failures }
  done;
  { !acc with failures = List.rev !acc.failures }

(* One serve trial: hammer one signature through [Serve.submit] with an
   injected engine fault plan on every request until the breaker trips,
   keep going while it is open (short-circuited to serial), then let the
   cooldown pass and confirm a clean probe closes it.  Every response —
   faulted, degraded, shorted, or probed — must be bitwise identical to
   the serial reference. *)
let serve_trial ?pool ?domains ~(config : Serve.config) seed =
  let gen = Splitmix.create seed in
  let s = random_signature gen in
  let n = Splitmix.int_in gen ~lo:600 ~hi:1500 in
  let x =
    Array.init n (fun _ -> S.of_int (Splitmix.int_in gen ~lo:(-9) ~hi:9))
  in
  let expected = Serial.full s x in
  let server = Serve_.create ~config ?pool ?domains () in
  let k = max 1 (Signature.order s) in
  let m = max (Signature.order s) (min config.chunk_size n) in
  let chunks = (n + m - 1) / m in
  let bad = ref None in
  let submit ?faults tag =
    match Serve_.submit ?faults server s x with
    | Ok y ->
        if y <> expected && !bad = None then
          bad := Some (Printf.sprintf "%s response diverged from serial" tag)
    | Error e ->
        if !bad = None then
          bad :=
            Some (Printf.sprintf "%s failed: %s" tag (Serve.error_to_string e))
  in
  (* Trip: consecutive faulted requests past the threshold.  A purely
     random plan can be benign (no events, or only reorders/delays the
     protocol tolerates), and one clean pooled outcome resets the
     consecutive count — so every plan is seeded with one guaranteed
     carry corruption on a non-final chunk on top of the random draw. *)
  for i = 0 to config.breaker_threshold do
    let base =
      Faults.random ~seed:(seed + (31 * i)) ~chunks ~lanes:k ~max_events:2 ()
    in
    let faults =
      Faults.of_events
        ({
           Faults.kind = Faults.Corrupt_carry;
           chunk = i mod max 1 (chunks - 1);
           lane = i mod k;
           delay = 1;
         }
        :: base.Faults.events)
    in
    submit ~faults (Printf.sprintf "faulted #%d" i)
  done;
  let tripped = Serve_.breaker_state server s = Serve.Open in
  (* Shorted traffic while open. *)
  submit "shorted";
  (* Cooldown, then a clean probe must close it again. *)
  Unix.sleepf (config.breaker_cooldown +. 0.01);
  submit "probe";
  let closed = Serve_.breaker_state server s = Serve.Closed in
  if not tripped && !bad = None then
    bad := Some "breaker did not trip after threshold faulty outcomes";
  if not closed && !bad = None then
    bad := Some "breaker did not close after a clean half-open probe";
  let mts = Serve_.metrics server in
  ( Metrics.Counter.get mts.Metrics.retries,
    Metrics.Counter.get mts.Metrics.breaker_trips,
    !bad )

let serve_config =
  {
    Serve.default_config with
    parallel_threshold = 256;
    chunk_size = 64;
    batching = false;
    check_prefix = 4096;
    retries = 2;
    retry_backoff = 1e-4;
    breaker_threshold = 3;
    breaker_cooldown = 2e-2;
  }

let serve_campaign ?pool ?domains ?(trials = 20) ?(config = serve_config)
    ~seed () =
  let acc = ref (empty trials) in
  for i = 0 to trials - 1 do
    let trial_seed = seed + (1000 * i) in
    let a = !acc in
    match serve_trial ?pool ?domains ~config trial_seed with
    | retries, trips, bad ->
        acc :=
          {
            a with
            faults_injected = a.faults_injected + 1;
            retries = a.retries + retries;
            breaker_trips = a.breaker_trips + trips;
            bitwise_ok = (a.bitwise_ok + if bad = None then 1 else 0);
            failures =
              (match bad with
              | None -> a.failures
              | Some msg -> (trial_seed, msg) :: a.failures);
          }
    | exception e ->
        acc :=
          { a with failures = (trial_seed, Printexc.to_string e) :: a.failures }
  done;
  { !acc with failures = List.rev !acc.failures }

(* One shard trial: a 2-shard server hammered from two domains with
   every request homed (by affinity) on the same shard — with the steal
   threshold at 1, overlapping pooled requests get stolen by the idle
   shard — while the main thread streams a sticky session through the
   same signature, explicitly migrating it between shards mid-stream
   with state faults injected around the moves.  Every hammer response
   and every session chunk must be bitwise identical to the offline
   serial pass: a steal or migration that loses or skews state cannot
   hide. *)
let shard_trial ?domains ~(config : Serve.config) seed =
  let gen = Splitmix.create seed in
  let s = random_signature gen in
  let n = Splitmix.int_in gen ~lo:600 ~hi:1200 in
  let x =
    Array.init n (fun _ -> S.of_int (Splitmix.int_in gen ~lo:(-9) ~hi:9))
  in
  let expected = Serial.full s x in
  let server = Serve_.create ~config ?domains () in
  Fun.protect ~finally:(fun () -> Serve_.shutdown server) @@ fun () ->
  let k = max 1 (Signature.order s) in
  let m = max (Signature.order s) (min config.chunk_size n) in
  let chunks = (n + m - 1) / m in
  let bad = Atomic.make None in
  let note msg = ignore (Atomic.compare_and_set bad None (Some msg)) in
  let reqs_per_domain = 12 in
  let hammer d () =
    for i = 0 to reqs_per_domain - 1 do
      (* A quarter of the hammer requests carry a guaranteed carry
         corruption: steals must not dodge the guard. *)
      let faults =
        if i land 3 = 0 then
          Some
            (Faults.of_events
               [
                 {
                   Faults.kind = Faults.Corrupt_carry;
                   chunk = i mod max 1 (chunks - 1);
                   lane = i mod k;
                   delay = 1;
                 };
               ])
        else None
      in
      match Serve_.submit ?faults server s x with
      | Ok y ->
          if y <> expected then
            note
              (Printf.sprintf "hammer domain %d request %d diverged from serial"
                 d i)
      | Error e ->
          note
            (Printf.sprintf "hammer domain %d request %d failed: %s" d i
               (Serve.error_to_string e))
    done
  in
  let doms = Array.init 2 (fun d -> Domain.spawn (hammer d)) in
  (* The sticky session rides alongside the hammer on the same
     signature, moved across shards mid-stream. *)
  let sn = 400 in
  let sx =
    Array.init sn (fun _ -> S.of_int (Splitmix.int_in gen ~lo:(-9) ~hi:9))
  in
  let sexpected = Serial.full s sx in
  let session = Serve_.session ~checkpoint_every:48 server s in
  let home = Serve_.shard_of_signature server s in
  let other = (home + 1) mod Serve_.shard_count server in
  let chunk_len = sn / 4 in
  let do_chunk ?fault i =
    let cx = Array.sub sx (i * chunk_len) chunk_len in
    let y = Serve_.Session.process ?fault session cx in
    Array.iteri
      (fun j v ->
        if not (S.equal v sexpected.((i * chunk_len) + j)) then
          note
            (Printf.sprintf "session chunk %d diverged at absolute index %d" i
               ((i * chunk_len) + j)))
      y
  in
  (try
     do_chunk 0;
     Serve_.migrate_session server session ~shard:other;
     do_chunk ~fault:Session.Corrupt_state 1;
     do_chunk 2;
     Serve_.migrate_session server session ~shard:home;
     do_chunk ~fault:(random_fault gen) 3
   with e -> note (Printexc.to_string e));
  Array.iter Domain.join doms;
  let st = Serve_.Session.stats session in
  let mts = Serve_.metrics server in
  ( st,
    Metrics.Counter.get mts.Metrics.steals,
    Metrics.Counter.get mts.Metrics.session_migrations,
    Atomic.get bad )

let shard_config =
  {
    serve_config with
    Serve.shards = 2;
    steal_threshold = 1;
    max_inflight = 128;
  }

let shard_campaign ?domains ?(trials = 6) ?(config = shard_config) ~seed () =
  let acc = ref (empty trials) in
  for i = 0 to trials - 1 do
    let trial_seed = seed + (1000 * i) in
    let a = !acc in
    match shard_trial ?domains ~config trial_seed with
    | st, steals, migrations, bad ->
        acc :=
          {
            a with
            faults_injected = a.faults_injected + 1;
            recoveries = a.recoveries + st.Session_.recoveries;
            fastforwards = a.fastforwards + st.Session_.fastforwards;
            checkpoints = a.checkpoints + st.Session_.checkpoints;
            steals = a.steals + steals;
            migrations = a.migrations + migrations;
            bitwise_ok = (a.bitwise_ok + if bad = None then 1 else 0);
            failures =
              (match bad with
              | None -> a.failures
              | Some msg -> (trial_seed, msg) :: a.failures);
          }
    | exception e ->
        acc :=
          { a with failures = (trial_seed, Printexc.to_string e) :: a.failures }
  done;
  { !acc with failures = List.rev !acc.failures }

let merge a b =
  {
    trials = a.trials + b.trials;
    faults_injected = a.faults_injected + b.faults_injected;
    recoveries = a.recoveries + b.recoveries;
    fastforwards = a.fastforwards + b.fastforwards;
    checkpoints = a.checkpoints + b.checkpoints;
    retries = a.retries + b.retries;
    breaker_trips = a.breaker_trips + b.breaker_trips;
    steals = a.steals + b.steals;
    migrations = a.migrations + b.migrations;
    bitwise_ok = a.bitwise_ok + b.bitwise_ok;
    failures = a.failures @ b.failures;
  }
