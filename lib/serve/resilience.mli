(** Chaos through the front door: seeded fault campaigns driven through
    the full session / retry / circuit-breaker stack, not just the bare
    engines (that is {!Plr_robust.Chaos}'s job).

    Campaigns run over the integer scalar so correctness is bitwise
    equality against one offline serial pass — no tolerance to hide
    behind.  Every trial is derived from its seed alone and is therefore
    reproducible from the command line ([plr chaos --serve]) and in CI. *)

type summary = {
  trials : int;
  faults_injected : int;  (** trials that injected at least one fault *)
  recoveries : int;  (** session checkpoint restorations *)
  fastforwards : int;  (** companion skip-aheads *)
  checkpoints : int;  (** session snapshots taken *)
  retries : int;  (** serve-layer retry attempts *)
  breaker_trips : int;  (** circuit-breaker open transitions *)
  steals : int;  (** pooled executions work-stolen across shards *)
  migrations : int;  (** explicit session migrations across shards *)
  bitwise_ok : int;  (** trials bitwise identical to the serial pass *)
  failures : (int * string) list;  (** (trial seed, what went wrong) *)
}

val ok : summary -> bool
(** No trial failed: every output was bitwise identical and every
    expected state-machine transition happened. *)

val pp_summary : Format.formatter -> summary -> unit

val session_campaign :
  ?pool:Plr_exec.Pool.t ->
  ?domains:int ->
  ?trials:int -> ?checkpoint_every:int -> seed:int -> unit -> summary
(** [trials] (default 200) streaming sessions, each a random signature
    fed in random data segments and zero-input gaps with one fault
    (crash, state corruption, or seeded engine fault) injected
    mid-stream; every produced output must be bitwise identical to the
    unfaulted serial pass over the concatenated input. *)

val serve_config : Serve.config
(** The aggressive configuration the serve campaign uses: small
    parallel threshold and chunks, fast breaker, short cooldown. *)

val serve_campaign :
  ?pool:Plr_exec.Pool.t ->
  ?domains:int ->
  ?trials:int -> ?config:Serve.config -> seed:int -> unit -> summary
(** [trials] (default 20) retry/breaker exercises: consecutive faulted
    submits must trip the signature's breaker, traffic while open is
    short-circuited to serial, and a clean probe after the cooldown must
    close it — with every response bitwise identical to serial. *)

val shard_config : Serve.config
(** The shard campaign's configuration: 2 shards, steal threshold 1
    (any overlap steals), on top of {!serve_config}'s aggressive
    thresholds. *)

val shard_campaign :
  ?domains:int ->
  ?trials:int -> ?config:Serve.config -> seed:int -> unit -> summary
(** [trials] (default 6) steal-vs-migration races: each trial hammers a
    2-shard server from two domains with every request affinity-homed
    on one shard (so the idle shard steals), a quarter of them carrying
    injected carry corruptions, while a sticky session on the same
    signature is explicitly migrated between shards mid-stream with
    state faults injected around the moves.  Every response and every
    session chunk must be bitwise identical to the offline serial pass.
    [domains] sizes each shard's private pool; the summary's [steals]
    and [migrations] report the cross-shard traffic observed. *)

val merge : summary -> summary -> summary
