(** A small thread-safe LRU cache for compiled execution plans.

    The serving layer keys entries by the canonicalized signature ×
    {!Plr_factors.Opts.t} × scalar domain (see {!Serve.Make.cache_key});
    the payload type is left polymorphic so each scalar instantiation
    stores its own compiled entries.

    Concurrency: every operation takes one short internal mutex, so
    lookups and inserts from many domains interleave safely.  The miss
    fill in {!find_or_add} runs *outside* the lock — two domains missing
    the same key concurrently may both compute; the second insert wins
    and the first value is simply dropped.  That duplicate work is benign
    (plans are pure) and keeps a slow compile from blocking every other
    caller's lookups. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64, clamped to ≥ 1) bounds the number of live
    entries; inserting past it evicts the least-recently-used entry. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry's recency and the hit counter on success, the miss
    counter otherwise. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace, evicting the LRU entry when over capacity. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [(value, hit)]: the cached value when present, otherwise the thunk's
    result after inserting it.  The thunk runs without holding the cache
    lock (see the module note on duplicate fills). *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val clear : 'a t -> unit
(** Drop every entry (counters are kept). *)
