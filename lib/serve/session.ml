module Pool = Plr_exec.Pool
module Trace = Plr_trace.Trace
module Faults = Plr_gpusim.Faults

type fault =
  | Crash
  | Corrupt_state
  | Engine_fault of int (* seed of the injected engine fault plan *)

let fault_to_string = function
  | Crash -> "crash"
  | Corrupt_state -> "corrupt-state"
  | Engine_fault seed -> Printf.sprintf "engine-fault(seed %d)" seed

module Make (S : Plr_util.Scalar.S) = struct
  module Multicore = Plr_multicore.Multicore.Make (S)
  module FP = Plr_factors.Factor_plan.Make (S)
  module Serial = Plr_serial.Serial.Make (S)
  module Companion = Plr_robust.Companion.Make (S)
  module Checkpoint = Companion.Checkpoint

  type segment = Data of S.t array | Gap of int

  type stats = {
    position : int;
    checkpoints : int;
    recoveries : int;
    fastforwards : int;
    detected : int;
    replayed : int;
    migrations : int;
  }

  type t = {
    signature : S.t Signature.t;
    pure : S.t Signature.t; (* (1 : feedback), for the local solves *)
    k : int;
    taps : int;
    mutable pool : Pool.t; (* reassigned only by [migrate] *)
    opts : Plr_factors.Opts.t;
    metrics : Metrics.t option;
    checkpoint_every : int;
    tol : float;
    comp : Companion.t;
    mutable carries : S.t array; (* carry j = j-th from last output *)
    mutable input_tail : S.t array; (* last taps-1 inputs, most recent last *)
    mutable fplan : FP.t option;
    mutable pos : int;
    mutable digest : int; (* of the live state; a mismatch = corruption *)
    mutable checkpoint : Checkpoint.t; (* last good snapshot *)
    mutable journal : segment list; (* since the checkpoint, newest first *)
    mutable armed : fault option;
    mutable n_checkpoints : int;
    mutable n_recoveries : int;
    mutable n_fastforwards : int;
    mutable n_detected : int;
    mutable n_replayed : int;
    mutable n_migrations : int;
  }

  (* Engine-fault injections run with this fixed chunk size (the chaos
     harness's choice) so small session chunks still span several chunks
     of the look-back protocol. *)
  let faulted_chunk = 16

  let default_checkpoint_every = 1024

  let poison = S.of_int 0x5EED_BAD
  let corrupt v = S.add (S.mul v (S.of_int 3)) (S.of_int 41)

  let live_digest t =
    (Checkpoint.make t.comp ~pos:t.pos ~carries:t.carries
       ~input_tail:t.input_tail)
      .Checkpoint.digest

  let create ?pool ?domains ?(opts = Plr_factors.Opts.all_on) ?metrics
      ?(checkpoint_every = default_checkpoint_every) ?(tol = 1e-3)
      (signature : S.t Signature.t) =
    let k = Signature.order signature in
    let taps = Signature.fir_taps signature in
    let _, pure = Signature.split ~one:S.one signature in
    let pool = match pool with Some p -> p | None -> Pool.get ?domains () in
    (* Compiled from the full signature (not [pure]) so the checkpoint
       layer knows the real FIR tap count and accepts the input tail;
       [advance] only ever reads the feedback side, which is identical. *)
    let comp = Companion.compile signature in
    let carries = Array.make k S.zero in
    let input_tail = Array.make (max 0 (taps - 1)) S.zero in
    let checkpoint = Checkpoint.make comp ~pos:0 ~carries ~input_tail in
    {
      signature;
      pure;
      k;
      taps;
      pool;
      opts;
      metrics;
      checkpoint_every = max 1 checkpoint_every;
      tol;
      comp;
      carries;
      input_tail;
      fplan = None;
      pos = 0;
      digest = checkpoint.Checkpoint.digest;
      checkpoint;
      journal = [];
      armed = None;
      n_checkpoints = 0;
      n_recoveries = 0;
      n_fastforwards = 0;
      n_detected = 0;
      n_replayed = 0;
      n_migrations = 0;
    }

  let signature t = t.signature
  let position t = t.pos
  let carries t = Array.copy t.carries

  let stats t =
    {
      position = t.pos;
      checkpoints = t.n_checkpoints;
      recoveries = t.n_recoveries;
      fastforwards = t.n_fastforwards;
      detected = t.n_detected;
      replayed = t.n_replayed;
      migrations = t.n_migrations;
    }

  let metric t f = match t.metrics with None -> () | Some m -> f m

  (* ------------------------------------------------- the stream filter *)
  (* The same stateful-filter mechanics as [Plr_multicore.Stream]: the
     FIR stage reads the saved input tail, the pure recurrence solves in
     parallel, and the boundary sweep folds the saved carries in.  The
     session reimplements it (rather than wrapping a [Stream.t]) because
     recovery must read and write the state words directly. *)

  let ensure_plan t len =
    let have = match t.fplan with None -> 0 | Some fp -> fp.FP.m in
    if len > have then
      t.fplan <-
        Some
          (FP.of_feedback ~opts:t.opts ~max_period:64
             ~feedback:t.signature.Signature.feedback
             ~m:(max len (2 * max 1 have)) ())

  let fir_with_history t x =
    let fwd = t.signature.Signature.forward in
    let taps = t.taps in
    if taps = 1 && S.is_one fwd.(0) then Array.copy x
    else begin
      let hist = t.input_tail in
      let nh = Array.length hist in
      Array.init (Array.length x) (fun i ->
          let acc = ref S.zero in
          for j = 0 to taps - 1 do
            if not (S.is_zero fwd.(j)) then begin
              let v =
                if i - j >= 0 then x.(i - j)
                else begin
                  let h = nh + (i - j) in
                  if h >= 0 then hist.(h) else S.zero
                end
              in
              acc := S.add !acc (S.mul fwd.(j) v)
            end
          done;
          !acc)
    end

  let correct_boundary t fp y ~n =
    for j = 0 to t.k - 1 do
      FP.apply_list fp ~j ~carry:t.carries.(j) y ~base:0 ~len:n
    done

  exception Detected of string

  (* The faulted solve: run the engine under the injected plan and check
     the whole chunk against the serial reference.  Anything that raised
     or diverged is [Detected] — the session never lets a faulted chunk's
     output (or state update) through unverified, so silent divergence is
     structurally impossible on this path. *)
  let solve_pure t tseq ~fault_seed =
    match fault_seed with
    | None -> Multicore.run ~opts:t.opts ~pool:t.pool t.pure tseq
    | Some seed ->
        let n = Array.length tseq in
        let m = max t.k (min faulted_chunk n) in
        let chunks = (n + m - 1) / m in
        let faults =
          Faults.random ~seed ~chunks ~lanes:(max 1 t.k) ~max_events:3 ()
        in
        let y =
          match
            Multicore.run ~opts:t.opts ~faults ~pool:t.pool
              ~chunk_size:faulted_chunk t.pure tseq
          with
          | y -> y
          | exception Plr_multicore.Multicore.Fault_detected msg ->
              raise (Detected msg)
          | exception e -> raise (Detected (Printexc.to_string e))
        in
        let expected = Serial.full t.pure tseq in
        Array.iteri
          (fun i v ->
            if not (S.approx_equal ~tol:t.tol v y.(i)) then
              raise
                (Detected
                   (Printf.sprintf "faulted engine diverged at index %d" i)))
          expected;
        y

  (* Process one data segment: no journaling, no checkpointing — exactly
     the state transition, so recovery replay goes through this same code
     and reproduces the state bit-for-bit. *)
  let process_data ?fault_seed t x =
    let n = Array.length x in
    if n = 0 then [||]
    else begin
      let tseq = fir_with_history t x in
      let y = solve_pure t tseq ~fault_seed in
      if t.pos > 0 then begin
        ensure_plan t n;
        match t.fplan with
        | None -> assert false
        | Some fp -> correct_boundary t fp y ~n
      end;
      t.carries <-
        Array.init t.k (fun j ->
            if n - 1 - j >= 0 then y.(n - 1 - j) else t.carries.(j - n));
      let nh = Array.length t.input_tail in
      if nh > 0 then
        t.input_tail <-
          Array.init nh (fun h ->
              let back = nh - 1 - h in
              if n - 1 - back >= 0 then x.(n - 1 - back)
              else t.input_tail.(nh - 1 - (back - n)));
      t.pos <- t.pos + n;
      y
    end

  (* A gap of [n] zero inputs.  The FIR stage still reads the input tail
     for the first [taps - 1] steps, so that warm-up runs through the
     ordinary data path; the remainder is pure feedback on zero input —
     one O(k³ log g) companion skip-ahead instead of O(g) work. *)
  let gap_advance t n =
    let warm = min n (max 0 (t.taps - 1)) in
    if warm > 0 then ignore (process_data t (Array.make warm S.zero));
    let g = n - warm in
    if g > 0 then begin
      Trace.begin_span2 Trace.Serve "session.ff" t.pos g;
      t.carries <- Companion.advance t.comp ~state:t.carries ~steps:g;
      t.pos <- t.pos + g;
      t.n_fastforwards <- t.n_fastforwards + 1;
      metric t (fun m -> Metrics.Counter.incr m.Metrics.session_fastforwards);
      Trace.end_span ()
    end

  (* ------------------------------------------------ checkpoint/recover *)

  let take_checkpoint t =
    Trace.begin_span2 Trace.Serve "session.checkpoint" t.pos
      (List.length t.journal);
    t.checkpoint <-
      Checkpoint.make t.comp ~pos:t.pos ~carries:t.carries
        ~input_tail:t.input_tail;
    t.journal <- [];
    t.n_checkpoints <- t.n_checkpoints + 1;
    metric t (fun m -> Metrics.Counter.incr m.Metrics.session_checkpoints);
    Trace.end_span ()

  let maybe_checkpoint t =
    if t.pos - t.checkpoint.Checkpoint.pos >= t.checkpoint_every then
      take_checkpoint t

  let segment_data_length = function Data x -> Array.length x | Gap _ -> 0

  (* Restore the last checkpoint and bring the state back to the current
     position by replaying the journal — data segments re-run through the
     exact original code path (bitwise-identical state), gaps re-run
     through the companion skip-ahead.  Only the elements since the last
     checkpoint are replayed, never the whole stream. *)
  let recover t =
    let cp = t.checkpoint in
    if not (Checkpoint.valid cp) then
      failwith "session: last checkpoint is corrupted, cannot recover";
    let journal = List.rev t.journal in
    let replayed =
      List.fold_left (fun a s -> a + segment_data_length s) 0 journal
    in
    Trace.begin_span2 Trace.Serve "session.recover" cp.Checkpoint.pos replayed;
    t.carries <- Array.copy cp.Checkpoint.carries;
    t.input_tail <- Array.copy cp.Checkpoint.input_tail;
    t.pos <- cp.Checkpoint.pos;
    List.iter
      (function
        | Data x -> ignore (process_data t x)
        | Gap n -> gap_advance t n)
      journal;
    t.n_recoveries <- t.n_recoveries + 1;
    t.n_replayed <- t.n_replayed + replayed;
    metric t (fun m -> Metrics.Counter.incr m.Metrics.session_recoveries);
    Trace.end_span ()

  (* ------------------------------------------------------ fault intake *)

  let inject t fault = t.armed <- Some fault

  (* State-corrupting faults strike before the call's work; the digest
     check below then discovers them exactly as it would discover real
     memory corruption. *)
  let apply_armed_corruption t =
    match t.armed with
    | Some Crash ->
        t.armed <- None;
        t.carries <- Array.make t.k poison;
        t.input_tail <- Array.make (Array.length t.input_tail) poison;
        t.pos <- t.pos + 1 (* a lost position is part of losing memory *)
    | Some Corrupt_state ->
        t.armed <- None;
        if t.k > 0 then t.carries.(0) <- corrupt t.carries.(0)
        else if Array.length t.input_tail > 0 then
          t.input_tail.(0) <- corrupt t.input_tail.(0)
    | _ -> ()

  let verify_state t =
    if live_digest t <> t.digest then begin
      t.n_detected <- t.n_detected + 1;
      recover t;
      t.digest <- live_digest t
    end

  let enter t fault =
    (match fault with Some f -> inject t f | None -> ());
    apply_armed_corruption t;
    verify_state t;
    match t.armed with
    | Some (Engine_fault seed) ->
        t.armed <- None;
        Some seed
    | _ -> None

  let finish_segment t seg =
    t.journal <- seg :: t.journal;
    maybe_checkpoint t;
    t.digest <- live_digest t

  (* ---------------------------------------------------------- migration *)

  (* Move the session to another pool (in the serving layer: another
     shard).  Sticky sessions are never *stolen* — their state words live
     on the owning shard — so a move is explicit and runs the recovery
     path: restore the last checkpoint and replay the journal on the
     destination pool.  Replay is the exact original code path, so the
     rebuilt state is bit-identical to the pre-migration state and the
     stream's outputs are unaffected. *)
  let migrate t ~pool =
    if pool == t.pool then ()
    else begin
      Trace.begin_span2 Trace.Serve "session.migrate" t.pos
        (List.length t.journal);
      Fun.protect ~finally:Trace.end_span @@ fun () ->
      t.pool <- pool;
      recover t;
      t.digest <- live_digest t;
      t.n_migrations <- t.n_migrations + 1;
      metric t (fun m -> Metrics.Counter.incr m.Metrics.session_migrations)
    end

  let process ?fault t x =
    let fault_seed = enter t fault in
    let n = Array.length x in
    if n = 0 then [||]
    else begin
      let y =
        match process_data ?fault_seed t x with
        | y -> y
        | exception Detected _ ->
            (* The faulted engine raised or diverged before any state was
               committed; rebuild from the checkpoint anyway (the state is
               no longer trusted) and re-run the chunk cleanly. *)
            t.n_detected <- t.n_detected + 1;
            recover t;
            process_data t x
      in
      finish_segment t (Data (Array.copy x));
      y
    end

  let skip ?fault t n =
    if n < 0 then invalid_arg "Session.skip: negative gap";
    ignore (enter t fault : int option);
    if n > 0 then begin
      gap_advance t n;
      finish_segment t (Gap n)
    end

  let checkpoint_now t = take_checkpoint t
end
