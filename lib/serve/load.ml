type spec = { name : string; weight : float }

type result = {
  mode : string;
  duration : float;
  clients : int;
  requests : int;
  ok : int;
  rejected : int;
  deadline_missed : int;
  failed : int;
  degraded : int;
  plan_hits : int;
  plan_misses : int;
  batches : int;
  batched_requests : int;
  throughput : float;
  offered_rps : float;
  slo_ms : float option;
  under_slo : int;
  goodput : float;
  shards : int;
  steals : int;
  session_migrations : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  mix : spec list;
  metrics_json : string;
}

let zipf_weights ~s n =
  Array.init n (fun i -> 1.0 /. Float.pow (float_of_int i +. 1.0) s)

(* Cumulative Zipf weights and a draw against them — shared by the
   closed loop's per-client picks and the open loop's pre-built
   schedule. *)
let zipf_cdf ~s n =
  let weights = zipf_weights ~s n in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  (weights, cdf, !acc)

let pick_from_cdf cdf total g =
  let n = Array.length cdf in
  let r = Plr_util.Splitmix.float_in g ~lo:0.0 ~hi:total in
  let i = ref 0 in
  while !i < n - 1 && cdf.(!i) <= r do
    incr i
  done;
  !i

(* The open-loop arrival schedule: request [i] is due at [i/rps] seconds
   with a Zipf-drawn signature and a uniform size, all from one seeded
   generator — the whole schedule is a pure function of its arguments,
   so paired runs replay the identical workload. *)
let open_schedule ~seed ~rps ~seconds ~nsig ~nsizes ~zipf () =
  if not (rps > 0.0) then invalid_arg "Load.open_schedule: rps must be > 0";
  if nsig <= 0 then invalid_arg "Load.open_schedule: empty signature mix";
  if nsizes <= 0 then invalid_arg "Load.open_schedule: empty size list";
  let n = max 1 (int_of_float (Float.round (rps *. Float.max 0.0 seconds))) in
  let _, cdf, total = zipf_cdf ~s:zipf nsig in
  let g = Plr_util.Splitmix.create (seed lxor 0x05EED0) in
  Array.init n (fun i ->
      let si = pick_from_cdf cdf total g in
      let sz = Plr_util.Splitmix.int_in g ~lo:0 ~hi:(nsizes - 1) in
      (float_of_int i /. rps, si, sz))

let render fmt r =
  Format.fprintf fmt
    "@[<v>serve-bench (%s loop): %d clients, %.2f s@,\
     requests: %d (%.0f/s), ok %d, rejected %d, deadline-missed %d, failed %d@,\
     degraded: %d@,"
    r.mode r.clients r.duration r.requests r.throughput r.ok r.rejected
    r.deadline_missed r.failed r.degraded;
  (match r.slo_ms with
  | Some slo ->
      Format.fprintf fmt
        "offered: %.0f rps; goodput (ok within %.1f ms SLO): %d (%.0f/s)@,"
        r.offered_rps slo r.under_slo r.goodput
  | None -> ());
  if r.shards > 1 || r.steals > 0 || r.session_migrations > 0 then
    Format.fprintf fmt "shards: %d, steals %d, session migrations %d@,"
      r.shards r.steals r.session_migrations;
  Format.fprintf fmt
    "plan cache: %d hits / %d misses (%.1f%% hit rate)@,\
     batches: %d fused covering %d requests@,\
     latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, mean %.3f ms@,\
     mix:@,"
    r.plan_hits r.plan_misses
    (let total = r.plan_hits + r.plan_misses in
     if total = 0 then 0.0
     else 100.0 *. float_of_int r.plan_hits /. float_of_int total)
    r.batches r.batched_requests r.p50_ms r.p95_ms r.p99_ms r.mean_ms;
  List.iter
    (fun m -> Format.fprintf fmt "  %-12s weight %.3f@," m.name m.weight)
    r.mix;
  Format.fprintf fmt "@]@."

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json ?meta r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"plr-serve-bench-2\",\n";
  (match meta with
  | Some m -> Buffer.add_string b (Printf.sprintf "  \"meta\": %s,\n" m)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf
       "  \"mode\": %S,\n  \"duration_s\": %s,\n  \"clients\": %d,\n\
       \  \"requests\": %d,\n\
       \  \"ok\": %d,\n  \"rejected\": %d,\n  \"deadline_missed\": %d,\n\
       \  \"failed\": %d,\n  \"degraded\": %d,\n  \"plan_hits\": %d,\n\
       \  \"plan_misses\": %d,\n  \"batches\": %d,\n\
       \  \"batched_requests\": %d,\n  \"throughput_rps\": %s,\n\
       \  \"offered_rps\": %s,\n  \"slo_ms\": %s,\n  \"under_slo\": %d,\n\
       \  \"goodput_rps\": %s,\n  \"shards\": %d,\n  \"steals\": %d,\n\
       \  \"session_migrations\": %d,\n\
       \  \"p50_ms\": %s,\n  \"p95_ms\": %s,\n  \"p99_ms\": %s,\n\
       \  \"mean_ms\": %s,\n"
       r.mode (json_float r.duration) r.clients r.requests r.ok r.rejected
       r.deadline_missed r.failed r.degraded r.plan_hits r.plan_misses
       r.batches r.batched_requests (json_float r.throughput)
       (json_float r.offered_rps)
       (match r.slo_ms with Some s -> json_float s | None -> "null")
       r.under_slo (json_float r.goodput) r.shards r.steals
       r.session_migrations (json_float r.p50_ms) (json_float r.p95_ms)
       (json_float r.p99_ms) (json_float r.mean_ms));
  Buffer.add_string b "  \"mix\": [";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{ \"name\": %S, \"weight\": %s }" m.name
           (json_float m.weight)))
    r.mix;
  Buffer.add_string b "],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"metrics\": %s\n}\n" r.metrics_json);
  Buffer.contents b

let write_json ~path ?meta r =
  Plr_util.Fileio.atomic_write_string ~path (to_json ?meta r)

module Make (S : Plr_util.Scalar.S) = struct
  module Srv = Serve.Make (S)

  (* Per-client tallies, merged after the join — the load loop itself
     touches no shared state besides the server. *)
  type tally = {
    mutable t_requests : int;
    mutable t_ok : int;
    mutable t_rejected : int;
    mutable t_deadline : int;
    mutable t_failed : int;
  }

  let fresh_tally () =
    { t_requests = 0; t_ok = 0; t_rejected = 0; t_deadline = 0; t_failed = 0 }

  (* Pre-generated inputs, one per (signature, size): the loops measure
     the server, not the RNG. *)
  let pregen_inputs ~seed ~sizes mix_a =
    Array.mapi
      (fun i _ ->
        Array.mapi
          (fun j n ->
            let g = Plr_util.Splitmix.create ((seed * 7919) + (i * 131) + j) in
            Array.init n (fun _ ->
                S.of_int (Plr_util.Splitmix.int_in g ~lo:(-9) ~hi:9)))
          sizes)
      mix_a

  let finish ~mode ~duration ~clients ~offered_rps ~slo_ms ~under_slo
      ~latency_h ~server ~weights ~mix_a tallies =
    let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
    let requests = sum (fun t -> t.t_requests) in
    let ok = sum (fun t -> t.t_ok) in
    let m = Srv.metrics server in
    let h = match latency_h with Some h -> h | None -> m.Metrics.total in
    let throughput =
      if duration > 0.0 then float_of_int ok /. duration else 0.0
    in
    let under_slo = match under_slo with Some u -> u | None -> ok in
    {
      mode;
      duration;
      clients;
      requests;
      ok;
      rejected = sum (fun t -> t.t_rejected);
      deadline_missed = sum (fun t -> t.t_deadline);
      failed = sum (fun t -> t.t_failed);
      degraded = Metrics.Counter.get m.Metrics.degraded;
      plan_hits = Metrics.Counter.get m.Metrics.plan_hits;
      plan_misses = Metrics.Counter.get m.Metrics.plan_misses;
      batches = Metrics.Counter.get m.Metrics.batches;
      batched_requests = Metrics.Counter.get m.Metrics.batched_requests;
      throughput;
      offered_rps;
      slo_ms;
      under_slo;
      goodput =
        (if duration > 0.0 then float_of_int under_slo /. duration else 0.0);
      shards = Srv.shard_count server;
      steals = Metrics.Counter.get m.Metrics.steals;
      session_migrations = Metrics.Counter.get m.Metrics.session_migrations;
      p50_ms = Metrics.Histogram.percentile h 0.50 *. 1e3;
      p95_ms = Metrics.Histogram.percentile h 0.95 *. 1e3;
      p99_ms = Metrics.Histogram.percentile h 0.99 *. 1e3;
      mean_ms = Metrics.Histogram.mean h *. 1e3;
      mix =
        List.mapi
          (fun i (name, _) -> { name; weight = weights.(i) })
          (Array.to_list mix_a);
      metrics_json = Srv.snapshot_json server;
    }

  let run ?(clients = 4) ?(seconds = 2.0) ?(zipf = 1.1)
      ?(sizes = [| 512; 1024; 4096; 32768 |]) ?(deadline_ms = 250.0)
      ?(seed = 7) ~server mix =
    if mix = [] then invalid_arg "Load.run: empty signature mix";
    if Array.length sizes = 0 then invalid_arg "Load.run: empty size list";
    let clients = max 1 clients in
    let mix_a = Array.of_list mix in
    let nsig = Array.length mix_a in
    let weights, cdf, total_w = zipf_cdf ~s:zipf nsig in
    let inputs = pregen_inputs ~seed ~sizes mix_a in
    let t_start = Unix.gettimeofday () in
    let stop_at = t_start +. Float.max 0.05 seconds in
    let client idx =
      let g = Plr_util.Splitmix.create ((seed * 31) + idx) in
      let tally = fresh_tally () in
      while Unix.gettimeofday () < stop_at do
        let si = pick_from_cdf cdf total_w g in
        let sz = Plr_util.Splitmix.int_in g ~lo:0 ~hi:(Array.length sizes - 1) in
        let _, signature = mix_a.(si) in
        let deadline = Unix.gettimeofday () +. (deadline_ms /. 1e3) in
        tally.t_requests <- tally.t_requests + 1;
        (match Srv.submit ~deadline server signature inputs.(si).(sz) with
        | Ok _ -> tally.t_ok <- tally.t_ok + 1
        | Error Serve.Overloaded -> tally.t_rejected <- tally.t_rejected + 1
        | Error Serve.Deadline_exceeded ->
            tally.t_deadline <- tally.t_deadline + 1
        | Error (Serve.Failed _) -> tally.t_failed <- tally.t_failed + 1);
        (* A rejected closed-loop client backs off briefly instead of
           hammering the admission gate. *)
        if tally.t_rejected > 0 && tally.t_requests land 15 = 0 then
          Unix.sleepf 1e-4
      done;
      tally
    in
    let others =
      Array.init (clients - 1) (fun i -> Domain.spawn (fun () -> client (i + 1)))
    in
    let mine = client 0 in
    let tallies = mine :: List.map Domain.join (Array.to_list others) in
    let duration = Unix.gettimeofday () -. t_start in
    finish ~mode:"closed" ~duration ~clients ~offered_rps:0.0 ~slo_ms:None
      ~under_slo:None ~latency_h:None ~server ~weights ~mix_a tallies

  let run_open ?(clients = 4) ?(rps = 500.0) ?(seconds = 2.0) ?(zipf = 1.1)
      ?(sizes = [| 512; 1024; 4096; 32768 |]) ?(deadline_ms = 250.0)
      ?(slo_ms = 50.0) ?(seed = 7) ~server mix =
    if mix = [] then invalid_arg "Load.run_open: empty signature mix";
    if Array.length sizes = 0 then invalid_arg "Load.run_open: empty size list";
    if not (rps > 0.0) then invalid_arg "Load.run_open: rps must be > 0";
    let clients = max 1 clients in
    let mix_a = Array.of_list mix in
    let nsig = Array.length mix_a in
    let weights, _, _ = zipf_cdf ~s:zipf nsig in
    let inputs = pregen_inputs ~seed ~sizes mix_a in
    let schedule =
      open_schedule ~seed ~rps ~seconds ~nsig
        ~nsizes:(Array.length sizes) ~zipf ()
    in
    let n = Array.length schedule in
    (* Open loop: arrivals happen at their scheduled instant whether or
       not earlier requests finished, and every latency is measured from
       the *intended* arrival — a slow server cannot slow the arrival
       process down, so queueing delay shows up in the percentiles
       instead of being coordinated away (the coordinated-omission fix).
       Workers are just transport: each claims the next arrival index,
       sleeps until its instant, and submits.  A late worker never skips
       a request; it submits immediately and the accumulated lateness is
       charged to the request, as a real queue would. *)
    let next = Atomic.make 0 in
    let under_slo = Atomic.make 0 in
    let latency_h = Metrics.Histogram.create () in
    let slo_s = slo_ms /. 1e3 in
    let t_start = Unix.gettimeofday () +. 0.005 in
    let worker () =
      let tally = fresh_tally () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let off, si, sz = schedule.(i) in
          let intended = t_start +. off in
          let d = intended -. Unix.gettimeofday () in
          if d > 0.0 then Unix.sleepf d;
          let _, signature = mix_a.(si) in
          let deadline = intended +. (deadline_ms /. 1e3) in
          tally.t_requests <- tally.t_requests + 1;
          let r = Srv.submit ~deadline server signature inputs.(si).(sz) in
          let lat = Unix.gettimeofday () -. intended in
          Metrics.Histogram.observe latency_h lat;
          (match r with
          | Ok _ ->
              tally.t_ok <- tally.t_ok + 1;
              if lat <= slo_s then Atomic.incr under_slo
          | Error Serve.Overloaded -> tally.t_rejected <- tally.t_rejected + 1
          | Error Serve.Deadline_exceeded ->
              tally.t_deadline <- tally.t_deadline + 1
          | Error (Serve.Failed _) -> tally.t_failed <- tally.t_failed + 1);
          loop ()
        end
      in
      loop ();
      tally
    in
    let others =
      Array.init (clients - 1) (fun _ -> Domain.spawn worker)
    in
    let mine = worker () in
    let tallies = mine :: List.map Domain.join (Array.to_list others) in
    let duration =
      Float.max (Unix.gettimeofday () -. t_start) (float_of_int n /. rps)
    in
    finish ~mode:"open" ~duration ~clients ~offered_rps:rps
      ~slo_ms:(Some slo_ms) ~under_slo:(Some (Atomic.get under_slo))
      ~latency_h:(Some latency_h) ~server ~weights ~mix_a tallies
end
