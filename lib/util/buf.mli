(** Unboxed float64 storage for the CPU hot path.

    A [Buf.t] is a C-layout [Bigarray.Array1] of binary64 values: the
    payload lives outside the OCaml heap as a flat [double] vector, so
    reads and writes in monomorphic code compile to direct unboxed
    loads/stores and a buffer costs O(1) heap words regardless of
    length.  The kernels in [Plr_serial], [Plr_multicore] and
    [Plr_factors] operate on this type directly; conversion to and from
    boxed [float array] happens only at the public API boundary
    ({!of_array}/{!to_array}).

    The type equation is exposed on purpose: hot loops may use
    [Bigarray.Array1.unsafe_get]/[unsafe_set] directly, which the
    compiler specializes to unboxed accesses because the element kind
    and layout are statically known. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** [create n] is a zero-filled buffer of length [n]. *)

val length : t -> int

val get : t -> int -> float
(** Bounds-checked read. *)

val set : t -> int -> float -> unit
(** Bounds-checked write. *)

val uget : t -> int -> float
(** Unchecked read — caller guarantees [0 <= i < length]. *)

val uset : t -> int -> float -> unit
(** Unchecked write — caller guarantees [0 <= i < length]. *)

val fill : t -> float -> unit

val sub : t -> pos:int -> len:int -> t
(** Zero-copy view sharing storage with the parent buffer. *)

val blit : src:t -> dst:t -> unit
(** Whole-buffer blit; lengths must match. *)

val blit_range : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val of_array : float array -> t
(** Boundary conversion: copies a boxed [float array] into fresh unboxed
    storage. *)

val to_array : t -> float array
(** Boundary conversion: copies unboxed storage back into a boxed
    [float array]. *)

val blit_from_array : float array -> t -> unit
(** Copy [Array.length a] leading elements of the array into the buffer
    (which must be at least that long) without allocating. *)

val blit_to_array : t -> float array -> unit
(** Copy [Array.length a] leading elements of the buffer into the array
    without allocating. *)

val init : int -> (int -> float) -> t
