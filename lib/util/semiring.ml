(* Equality that treats the two infinities as equal to themselves (the
   float_approx_equal path yields NaN on ∞ − ∞). *)
let float_exact_equal ~tol:_ a b = Float.equal a b

module Max_plus : Scalar.S with type t = float = struct
  type t = float

  let kind = Scalar.Floating

  (* t = float, but max/+ is not IEEE (+,×): the monomorphic float
     kernels would compute the wrong thing, so stay on the generic path. *)
  let rep = Scalar.Other_rep
  let exact_f64_embedding = false
  let bytes = 4
  let ctype = "float"
  let zero = Float.neg_infinity
  let one = 0.0
  let add = Float.max
  let mul = ( +. )

  (* no additive inverse in a semiring; never called by the algorithms *)
  let sub a _ = a
  let neg x = x
  let of_int = float_of_int
  let of_float x = x
  let to_float x = x
  let to_int = int_of_float
  let equal = Float.equal
  let is_zero x = x = Float.neg_infinity
  let is_one x = x = 0.0
  let flush_denormal x = x
  let approx_equal = float_exact_equal
  let pp fmt x = Format.fprintf fmt "%g" x
  let to_string = string_of_float
end

module Min_plus : Scalar.S with type t = float = struct
  include Max_plus

  let zero = Float.infinity
  let add = Float.min
  let is_zero x = x = Float.infinity
end

module Bool_or_and : Scalar.S with type t = bool = struct
  type t = bool

  let kind = Scalar.Integer
  let rep = Scalar.Other_rep
  let exact_f64_embedding = false
  let bytes = 4
  let ctype = "int"
  let zero = false
  let one = true
  let add = ( || )
  let mul = ( && )
  let sub a _ = a
  let neg x = x
  let of_int v = v <> 0
  let of_float v = v <> 0.0
  let to_float v = if v then 1.0 else 0.0
  let to_int v = if v then 1 else 0
  let equal = Bool.equal
  let is_zero x = not x
  let is_one x = x
  let flush_denormal x = x
  let approx_equal ~tol:_ a b = Bool.equal a b
  let pp = Format.pp_print_bool
  let to_string = string_of_bool
end
