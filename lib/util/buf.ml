type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0.0;
  b

let length (b : t) = Bigarray.Array1.dim b
let get (b : t) i = Bigarray.Array1.get b i
let set (b : t) i v = Bigarray.Array1.set b i v
let uget (b : t) i = Bigarray.Array1.unsafe_get b i
let uset (b : t) i v = Bigarray.Array1.unsafe_set b i v
let fill (b : t) v = Bigarray.Array1.fill b v
let sub (b : t) ~pos ~len : t = Bigarray.Array1.sub b pos len
let blit ~(src : t) ~(dst : t) = Bigarray.Array1.blit src dst

let blit_range ~(src : t) ~src_pos ~(dst : t) ~dst_pos ~len =
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src src_pos len)
      (Bigarray.Array1.sub dst dst_pos len)

let of_array (a : float array) : t =
  let n = Array.length a in
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (Array.unsafe_get a i)
  done;
  b

let to_array (b : t) =
  let n = Bigarray.Array1.dim b in
  if n = 0 then [||]
  else begin
    let a = Array.make n 0.0 in
    for i = 0 to n - 1 do
      Array.unsafe_set a i (Bigarray.Array1.unsafe_get b i)
    done;
    a
  end

let blit_from_array (a : float array) (b : t) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (Array.unsafe_get a i)
  done

let blit_to_array (b : t) (a : float array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get b i)
  done

let init n f : t =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (f i)
  done;
  b
