let atomic_write ~path writer =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  match writer oc with
  | () ->
      close_out oc;
      Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let atomic_write_string ~path s =
  atomic_write ~path (fun oc -> output_string oc s)
