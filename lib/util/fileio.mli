(** Atomic file writes.

    A crashed or failed export must never leave a half-written file where
    a consumer (CI baseline comparison, a trace viewer) expects a complete
    one.  [atomic_write] stages the content in a unique temporary file in
    the destination directory and commits it with [Sys.rename] — on POSIX
    a same-directory rename is atomic, so readers observe either the old
    file or the complete new one, never a truncated intermediate. *)

val atomic_write : path:string -> (out_channel -> unit) -> unit
(** [atomic_write ~path writer] calls [writer] on a channel to a fresh
    temporary file next to [path], then renames it over [path].  If
    [writer] raises, the temporary file is removed, [path] is left
    untouched (whatever it contained before, if anything), and the
    exception is re-raised. *)

val atomic_write_string : path:string -> string -> unit
(** [atomic_write ~path (fun oc -> output_string oc s)]. *)
