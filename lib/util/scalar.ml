(** The numeric domains a recurrence can be computed over.

    The paper evaluates 32-bit integer and 32-bit floating-point sequences;
    we additionally provide native [int] and binary64 instances, which are
    convenient for exact testing and for the multicore CPU backend.  All
    algorithm code in this repository is written once against {!S} and
    instantiated per domain. *)

type kind =
  | Integer  (** exact arithmetic, validated with equality *)
  | Floating (** rounded arithmetic, validated with a tolerance *)

type rounding =
  | Exact     (** native binary64 arithmetic, no extra rounding *)
  | Round_f32 (** round every operation to binary32 (the {!F32} emulation) *)

(* Representation witness: matching on [S.rep] refines [S.t] statically,
   so kernels can be monomorphized onto flat [int array]s or unboxed
   [Buf.t] storage without any copy or [Obj.magic]. *)
type _ rep =
  | Int_rep : int rep
  | Float_rep : rounding -> float rep
  | Other_rep : 'a rep

module type S = sig
  type t

  val kind : kind

  val rep : t rep
  (** Runtime witness of the representation of [t], used to dispatch the
      CPU backends onto monomorphic unboxed kernels.  [Float_rep r] and
      [Int_rep] promise that [add]/[sub]/[mul]/[neg] are exactly the
      native operations (composed with the [r] rounding step for floats)
      — semirings with exotic operations must use [Other_rep]. *)

  val exact_f64_embedding : bool
  (** True when the scalar's [add]/[mul] agree with IEEE binary64 [+]/[×]
      up to rounding, so correction factors may be precomputed in double
      precision and converted (what the paper's offline precomputation
      does).  False for the non-numeric semirings in {!Semiring}, whose
      factors must be generated with the semiring's own operations. *)

  val bytes : int
  (** Storage size of one value on the modeled device (always 4 for the
      paper's data types; 8 for the binary64 instance). *)

  val ctype : string
  (** The C type name used by the CUDA code generator. *)

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float

  (* Exact for integer scalars (no float round-trip); truncation for
     floating scalars. *)
  val to_int : t -> int
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val is_one : t -> bool

  val flush_denormal : t -> t
  (** Flush-to-zero for floating instances; the identity for integers. *)

  val approx_equal : tol:float -> t -> t -> bool
  (** Exact equality for integers; for floats, true when the absolute or
      relative discrepancy is below [tol] (the paper uses [1e-3]). *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module F32_arith = F32
(* Alias the float32-emulation compilation unit before the [F32] scalar
   instance below shadows its name. *)

(* Shared tolerance test for the floating instances. *)
let float_approx_equal ~tol a b =
  let d = Float.abs (a -. b) in
  d <= tol || d <= tol *. Float.max (Float.abs a) (Float.abs b)

module Int : S with type t = int = struct
  type t = int

  let kind = Integer
  let rep = Int_rep
  let exact_f64_embedding = true
  let bytes = 4
  let ctype = "int"
  let zero = 0
  let one = 1
  let add = ( + )
  let sub = ( - )
  let mul = ( * )
  let neg x = -x
  let of_int x = x
  let of_float = int_of_float
  let to_float = float_of_int
  let to_int x = x
  let equal = Stdlib.Int.equal
  let is_zero x = x = 0
  let is_one x = x = 1
  let flush_denormal x = x
  let approx_equal ~tol:_ a b = a = b
  let pp = Format.pp_print_int
  let to_string = string_of_int
end

module Int32s : S with type t = int32 = struct
  type t = int32

  let kind = Integer

  (* Int32 values are boxed; the monomorphic backends have no unboxed
     storage for them, so they stay on the generic kernels. *)
  let rep = Other_rep
  let exact_f64_embedding = true
  let bytes = 4
  let ctype = "int"
  let zero = 0l
  let one = 1l
  let add = Int32.add
  let sub = Int32.sub
  let mul = Int32.mul
  let neg = Int32.neg
  let of_int = Int32.of_int
  let of_float = Int32.of_float
  let to_float = Int32.to_float
  let to_int = Int32.to_int
  let equal = Int32.equal
  let is_zero x = Int32.equal x 0l
  let is_one x = Int32.equal x 1l
  let flush_denormal x = x
  let approx_equal ~tol:_ a b = Int32.equal a b
  let pp fmt x = Format.fprintf fmt "%ld" x
  let to_string = Int32.to_string
end

module F32 : S with type t = float = struct
  type t = float

  let kind = Floating
  let rep = Float_rep Round_f32
  let exact_f64_embedding = true
  let bytes = 4
  let ctype = "float"
  let zero = 0.0
  let one = 1.0
  let add = F32_arith.add
  let sub = F32_arith.sub
  let mul = F32_arith.mul
  let neg = F32_arith.neg
  let of_int x = F32_arith.round (float_of_int x)
  let of_float = F32_arith.round
  let to_float x = x
  let to_int = int_of_float
  let equal = Float.equal
  let is_zero x = x = 0.0
  let is_one x = x = 1.0
  let flush_denormal = F32_arith.flush_denormal
  let approx_equal = float_approx_equal
  let pp fmt x = Format.fprintf fmt "%g" x
  let to_string = string_of_float
end

module F64 : S with type t = float = struct
  type t = float

  let kind = Floating
  let rep = Float_rep Exact
  let exact_f64_embedding = true
  let bytes = 8
  let ctype = "double"
  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let neg x = -.x
  let of_int = float_of_int
  let of_float x = x
  let to_float x = x
  let to_int = int_of_float
  let equal = Float.equal
  let is_zero x = x = 0.0
  let is_one x = x = 1.0
  let flush_denormal x = if F32_arith.is_denormal x then 0.0 else x
  let approx_equal = float_approx_equal
  let pp fmt x = Format.fprintf fmt "%g" x
  let to_string = string_of_float
end
