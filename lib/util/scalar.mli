(** The numeric domains a recurrence can be computed over.

    The paper evaluates 32-bit integer and 32-bit floating-point sequences;
    we additionally provide native [int] and binary64 instances, which are
    convenient for exact testing and for the multicore CPU backend.  All
    algorithm code in this repository is written once against {!S} and
    instantiated per domain.  Non-numeric semiring instances live in
    {!Semiring}. *)

type kind =
  | Integer   (** exact arithmetic, validated with equality *)
  | Floating  (** rounded arithmetic, validated with a tolerance *)

type rounding =
  | Exact     (** native binary64 arithmetic, no extra rounding *)
  | Round_f32 (** round every operation to binary32 (the {!F32} emulation) *)

type _ rep =
  | Int_rep : int rep
  | Float_rep : rounding -> float rep
  | Other_rep : 'a rep
      (** Representation witness.  Matching on [S.rep] refines [S.t]
          statically, so the CPU backends can monomorphize their kernels
          onto flat [int array]s or unboxed {!Buf.t} storage with no copy
          and no [Obj.magic].  [Int_rep]/[Float_rep] additionally promise
          that [add]/[sub]/[mul]/[neg] are exactly the native operations
          (composed with the given rounding step for floats); semirings
          with exotic operations must declare [Other_rep]. *)

module type S = sig
  type t

  val kind : kind

  val rep : t rep
  (** Witness of the representation of [t]; see {!type:rep}. *)

  val exact_f64_embedding : bool
  (** True when [add]/[mul] agree with IEEE binary64 [+]/[×] up to
      rounding, so correction factors may be precomputed in double
      precision and converted (what the paper's offline precomputation
      does).  False for the semirings, whose factors must be generated with
      their own operations. *)

  val bytes : int
  (** Storage size of one value on the modeled device (4 for the paper's
      data types; 8 for binary64). *)

  val ctype : string
  (** The C type name used by the CUDA code generator. *)

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float

  val to_int : t -> int
  (** Exact for integer scalars (no float round-trip); truncation for
      floating scalars. *)

  val equal : t -> t -> bool
  val is_zero : t -> bool
  val is_one : t -> bool

  val flush_denormal : t -> t
  (** Flush-to-zero for floating instances; the identity for integers. *)

  val approx_equal : tol:float -> t -> t -> bool
  (** Exact equality for integers; for floats, true when the absolute or
      relative discrepancy is below [tol] (the paper uses [1e-3], §5). *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Int : S with type t = int
(** Native int — wraps modulo 2⁶³, convenient for exact tests. *)

module Int32s : S with type t = int32
(** True 32-bit wrap-around semantics, matching GPU integer code. *)

module F32 : S with type t = float
(** Emulated IEEE binary32: every operation rounds to float32 (see
    {!F32}'s emulation in the [F32] compilation unit). *)

module F64 : S with type t = float
