(** Factor-list specialization views (paper §3.1), shared by the CUDA
    emitter and the VM kernel generator so both back ends compile identical
    choices.  The decisions themselves live in the backend-agnostic
    {!Plr_factors.Factor_plan} carried by the plan; this module only adds
    the code-generation-specific shared-cache sizing. *)

module Make (S : Plr_util.Scalar.S) : sig
  module P : module type of Plr_core.Plan.Make (S)
  module F : module type of Plr_factors.Factor_plan.Make (S)

  val compiled : P.t -> int -> F.compiled
  (** The compiled form of factor list [j] — what section 1 emits. *)

  val table : P.t -> int -> S.t array option
  (** The device-resident factor table of list [j] ([None] when the
      compiled form folds into code). *)

  val table_elems : P.t -> int -> int
  (** Factors of list [j] stored in device memory under the compiled form. *)

  val one_positions : P.t -> int -> int list
  (** For a short-period 0/1 list: indices within one period whose factor
      is 1. *)

  val cached_elems : P.t -> int -> int
  (** Factors of list [j] buffered in the shared-memory cache. *)
end
