(** The PLR native-CPU back end: translates a compiled {!Plr_core.Plan}
    (or a bare {!Plr_factors.Factor_plan} + signature) into a
    self-contained C translation unit for the JIT runtime ([Plr_jit]).

    Two entry points are emitted:

    - [plr_jit_run(x, y, n)] — a fully specialized serial-order
      FIR+feedback kernel, every coefficient a baked-in constant, over
      raw [restrict] pointers.  Its operation sequence replicates the
      OCaml serial reference exactly, so (compiled with contraction and
      fast-math off) the output is {e bitwise identical} to
      [Serial.full] for int, f32 and f64 scalars.
    - [plr_jit_run_chunked(x, y, n, m)] — the paper's §3 two-phase
      chunked algorithm with the correction sweeps specialized per
      {!Plr_factors.Factor_plan} class (all-equal folded to constants,
      zero/one to bitmask conditional adds, repeating/decayed to static
      tables).  Operation order mirrors the sequential-fallback
      multicore backend at the same chunk size.

    Int kernels accumulate mod 2^64 in [uint64_t] and renormalize to
    OCaml's 63 bits at each store (congruent mod 2^63); F32 emulation
    emits one explicit [(double)(float)] rounding per operation; float
    constants are C99 hex literals, so every value round-trips exactly.

    The emitted text is deterministic for a given plan — the JIT's
    on-disk cache keys on its digest. *)

module Make (S : Plr_util.Scalar.S) : sig
  module P : module type of Plr_core.Plan.Make (S)

  val supported : bool
  (** Whether this scalar has a native C representation (int and float
      scalars do; [Other_rep] scalars do not). *)

  val emit : fplan:P.F.t -> S.t Signature.t -> string
  (** The complete translation unit.
      @raise Invalid_argument when [supported] is false or the factor
      plan's order disagrees with the signature. *)

  val emit_plan : P.t -> string
  (** [emit] applied to a compiled plan's own factor plan + signature. *)

  val specialization_summary : fplan:P.F.t -> string list
  (** One human-readable line per factor list describing the emitted
      specialization (same vocabulary as the CUDA emitter's summary). *)
end
