module Ast = Plr_vm.Ast
module Interp = Plr_vm.Interp
open Ast

module Make (S : Plr_util.Scalar.S) = struct
  module P = Plr_core.Plan.Make (S)
  module Sp = Specialize.Make (S)

  let to_value (x : S.t) =
    match S.kind with
    | Plr_util.Scalar.Integer -> VI (S.to_int x)
    | Plr_util.Scalar.Floating -> VF (S.to_float x)

  let of_value = function VI i -> S.of_int i | VF f -> S.of_float f

  let dlit (x : S.t) =
    match S.kind with
    | Plr_util.Scalar.Integer -> Int (S.to_int x)
    | Plr_util.Scalar.Floating -> Flt (S.to_float x)

  let data_zero =
    match S.kind with
    | Plr_util.Scalar.Integer -> Int 0
    | Plr_util.Scalar.Floating -> Flt 0.0

  (* small expression DSL *)
  let i_ n = Int n
  let v n = Var n
  let ( +: ) a b = Bin (Add, a, b)
  let ( -: ) a b = Bin (Sub, a, b)
  let ( *: ) a b = Bin (Mul, a, b)
  let ( /: ) a b = Bin (Div, a, b)
  let ( %: ) a b = Bin (Mod, a, b)
  let ( <: ) a b = Bin (Lt, a, b)
  let ( >: ) a b = Bin (Gt, a, b)
  let ( >=: ) a b = Bin (Ge, a, b)
  let ( =: ) a b = Bin (Eq, a, b)
  let band a b = Bin (BitAnd, a, b)
  let shr a b = Bin (Shr, a, b)

  let log2 n =
    let rec go v acc = if v <= 1 then acc else go (v / 2) (acc + 1) in
    go n 0

  let factors_name j = Printf.sprintf "factors_%d" j
  let sh_factors_name j = Printf.sprintf "sh_factors_%d" j

  (* The expression loading factor (j, q), honouring the shared cache. *)
  let factor_load (plan : P.t) j q =
    let cached = Sp.cached_elems plan j in
    if cached > 0 then
      Ite (q <: i_ cached, Load (sh_factors_name j, q), Load (factors_name j, q))
    else Load (factors_name j, q)

  (* Statements adding list [j]'s correction term into scalar [acc]:
     acc += factor(j, q) · carry, specialized per compiled form. *)
  let correct_stmts (plan : P.t) j ~q ~carry ~acc =
    match Sp.compiled plan j with
    | Sp.F.All_equal c ->
        if S.is_zero c then []
        else if S.is_one c then [ Set (acc, v acc +: carry) ]
        else [ Set (acc, v acc +: (dlit c *: carry)) ]
    | Sp.F.Zero_one { period = Some p; _ } ->
        let test =
          match Sp.one_positions plan j with
          | [] -> i_ 0
          | o :: rest ->
              List.fold_left
                (fun e o' -> Bin (Or, e, q %: i_ p =: i_ o'))
                (q %: i_ p =: i_ o)
                rest
        in
        [ If (test, [ Set (acc, v acc +: carry) ]) ]
    | Sp.F.Repeating { period = p; _ } ->
        [ Set (acc, v acc +: (Load (factors_name j, q %: i_ p) *: carry)) ]
    | Sp.F.Decayed { cutoff = z; _ } ->
        [ If (q <: i_ z, [ Set (acc, v acc +: (factor_load plan j q *: carry)) ]) ]
    | Sp.F.Zero_one { period = None; _ } | Sp.F.Dense _ ->
        [ Set (acc, v acc +: (factor_load plan j q *: carry)) ]

  (* A signature-coefficient term: acc += coeff · value (suppressed when the
     generator knows the coefficient statically). *)
  let coeff_stmts c ~value ~acc =
    if S.is_zero c then []
    else if S.is_one c then [ Set (acc, v acc +: value) ]
    else [ Set (acc, v acc +: (dlit c *: value)) ]

  let kernel (plan : P.t) : kernel =
    if not S.exact_f64_embedding then
      invalid_arg "Kernelgen: semiring scalars have no CUDA representation";
    let threads = plan.P.threads_per_block in
    if threads land (threads - 1) <> 0 then
      invalid_arg "Kernelgen: threads per block must be a power of two";
    let x = plan.P.x in
    let k = plan.P.order in
    let m = plan.P.m in
    let chunks = P.num_chunks plan in
    let levels = log2 threads in
    let warp_levels = min levels 5 in
    let tail_n = min k x in
    let s = plan.P.signature in
    let taps = Signature.fir_taps s in
    (* ------------------------------------------------- array declarations *)
    let global_arrays =
      [ { arr_name = "chunk_counter"; arr_space = Global; arr_ty = TInt;
          arr_size = 1; arr_init = Some [| VI 0 |]; arr_volatile = false };
        { arr_name = "local_carries"; arr_space = Global; arr_ty = TData;
          arr_size = chunks * k; arr_init = None; arr_volatile = false };
        { arr_name = "global_carries"; arr_space = Global; arr_ty = TData;
          arr_size = chunks * k; arr_init = None; arr_volatile = false };
        { arr_name = "local_ready"; arr_space = Global; arr_ty = TInt;
          arr_size = chunks; arr_init = None; arr_volatile = true };
        { arr_name = "global_ready"; arr_space = Global; arr_ty = TInt;
          arr_size = chunks; arr_init = None; arr_volatile = true } ]
      @ List.filter_map
          (fun j ->
            match Sp.table plan j with
            | None -> None
            | Some tbl ->
                Some
                  { arr_name = factors_name j; arr_space = Global; arr_ty = TData;
                    arr_size = Array.length tbl;
                    arr_init = Some (Array.map to_value tbl);
                    arr_volatile = false })
          (List.init k Fun.id)
    in
    let shared_arrays =
      [ { arr_name = "chunk_shared"; arr_space = Shared; arr_ty = TInt;
          arr_size = 1; arr_init = None; arr_volatile = false };
        { arr_name = "g_carry"; arr_space = Shared; arr_ty = TData;
          arr_size = k; arr_init = None; arr_volatile = false } ]
      @ (if levels > warp_levels then
           [ { arr_name = "sh_tail"; arr_space = Shared; arr_ty = TData;
               arr_size = threads * tail_n; arr_init = None; arr_volatile = false } ]
         else [])
      @ List.filter_map
          (fun j ->
            let cached = Sp.cached_elems plan j in
            if cached = 0 then None
            else
              Some
                { arr_name = sh_factors_name j; arr_space = Shared; arr_ty = TData;
                  arr_size = cached; arr_init = None; arr_volatile = false })
          (List.init k Fun.id)
    in
    (* -------------------------------------------------------- kernel body *)
    let cache_loads =
      List.concat_map
        (fun j ->
          let cached = Sp.cached_elems plan j in
          if cached = 0 then []
          else
            [ For ("q", Tid, i_ cached, i_ threads,
                   [ Store (sh_factors_name j, v "q", Load (factors_name j, v "q")) ]) ])
        (List.init k Fun.id)
    in
    let section2 =
      [ Comment "Section 2: acquire a chunk ticket and load its values";
        If (Tid =: i_ 0,
            [ Atomic_add ("ticket", "chunk_counter", i_ 1);
              Store ("chunk_shared", i_ 0, v "ticket") ]);
        Sync;
        Let ("chunk", TInt, Load ("chunk_shared", i_ 0));
        Let ("base", TInt, v "chunk" *: i_ m);
        Let_arr ("vals", TData, x);
        For ("i", i_ 0, i_ x, i_ 1,
             [ Let ("idx", TInt, v "base" +: (Tid *: i_ x) +: v "i");
               Store ("vals", v "i",
                      Ite (v "idx" <: v "n", Load ("input", v "idx"), data_zero)) ]) ]
    in
    let section3 =
      if taps = 1 && S.is_one s.Signature.forward.(0) then
        [ Comment "Section 3: map stage suppressed (pure recurrence)" ]
      else
        [ Comment "Section 3: map stage (non-recursive coefficients)";
          Let_arr ("tvals", TData, x);
          For ("i2", i_ 0, i_ x, i_ 1,
               [ Let ("i", TInt, i_ (x - 1) -: v "i2");
                 Let ("idx", TInt, v "base" +: (Tid *: i_ x) +: v "i");
                 Let ("facc", TData, data_zero);
                 If (v "idx" <: v "n",
                     List.concat
                       (List.filteri (fun j _ -> j < taps)
                          (List.init taps (fun j ->
                               let c = s.Signature.forward.(j) in
                               if S.is_zero c then []
                               else
                                 [ If (v "idx" >=: i_ j,
                                       coeff_stmts c
                                         ~value:
                                           (Ite (v "i" >=: i_ j,
                                                 Load ("vals", v "i" -: i_ j),
                                                 Load ("input", v "idx" -: i_ j)))
                                         ~acc:"facc") ]))));
                 Store ("tvals", v "i", v "facc") ]);
          For ("i", i_ 0, i_ x, i_ 1, [ Store ("vals", v "i", Load ("tvals", v "i")) ]) ]
    in
    let serial_solve =
      [ Comment "Section 4: Phase 1 — per-thread serial solve";
        For ("i", i_ 1, i_ x, i_ 1,
             [ Let ("sacc", TData, Load ("vals", v "i")) ]
             @ List.concat
                 (List.init k (fun j0 ->
                      let j = j0 + 1 in
                      let c = s.Signature.feedback.(j - 1) in
                      if S.is_zero c then []
                      else
                        [ If (v "i" >=: i_ j,
                              coeff_stmts c ~value:(Load ("vals", v "i" -: i_ j))
                                ~acc:"sacc") ]))
             @ [ Store ("vals", v "i", v "sacc") ]) ]
    in
    (* warp-level merging *)
    let warp_level l =
      let g = 1 lsl l in
      let carries = List.init k Fun.id |> List.filter (fun j -> j < g * x) in
      let shuffles =
        List.map
          (fun j ->
            Let (Printf.sprintf "wc%d_%d" l j, TData,
                 Shfl_up
                   (Load ("vals", i_ (x - 1 - (j mod x))),
                    band Tid (i_ (g - 1)) +: i_ (1 + (j / x)))))
          carries
      in
      let correction =
        If (band (shr Tid (i_ l)) (i_ 1) =: i_ 1,
            [ For ("i", i_ 0, i_ x, i_ 1,
                   [ Let ("q", TInt, (band Tid (i_ (g - 1)) *: i_ x) +: v "i");
                     Let ("cacc", TData, Load ("vals", v "i")) ]
                   @ List.concat_map
                       (fun j ->
                         correct_stmts plan j ~q:(v "q")
                           ~carry:(v (Printf.sprintf "wc%d_%d" l j)) ~acc:"cacc")
                       carries
                   @ [ Store ("vals", v "i", v "cacc") ]) ])
      in
      Comment (Printf.sprintf "warp merge level %d (group of %d threads)" l g)
      :: shuffles
      @ [ correction ]
    in
    (* block-level merging through shared memory *)
    let block_level l =
      let g = 1 lsl l in
      let pair_mask = lnot ((2 * g) - 1) land (threads - 1) in
      let publish =
        List.init tail_n (fun j2 ->
            Store ("sh_tail", (Tid *: i_ tail_n) +: i_ j2,
                   Load ("vals", i_ (x - 1 - j2))))
      in
      let correction =
        If (band (shr Tid (i_ l)) (i_ 1) =: i_ 1,
            [ Let ("bp", TInt, band Tid (i_ pair_mask)) ]
            @ [ For ("i", i_ 0, i_ x, i_ 1,
                     [ Let ("q", TInt, (band Tid (i_ (g - 1)) *: i_ x) +: v "i");
                       Let ("cacc", TData, Load ("vals", v "i")) ]
                     @ List.concat
                         (List.init k (fun j ->
                              let src = v "bp" +: i_ (g - 1 - (j / x)) in
                              correct_stmts plan j ~q:(v "q")
                                ~carry:
                                  (Load ("sh_tail",
                                         (src *: i_ tail_n) +: i_ (j mod x)))
                                ~acc:"cacc"))
                     @ [ Store ("vals", v "i", v "cacc") ]) ])
      in
      [ Comment (Printf.sprintf "block merge level %d (group of %d threads)" l g) ]
      @ publish
      @ [ Sync; correction; Sync ]
    in
    let merging =
      List.concat_map warp_level (List.init warp_levels Fun.id)
      @ List.concat_map
          (fun l0 -> block_level (warp_levels + l0))
          (List.init (levels - warp_levels) Fun.id)
    in
    let publish_carries ~array ~flag =
      List.concat
        (List.init k (fun j ->
             let owner = threads - 1 - (j / x) in
             [ If (Tid =: i_ owner,
                   [ Store (array, (v "chunk" *: i_ k) +: i_ j,
                            Load ("vals", i_ (x - 1 - (j mod x)))) ]) ]))
      @ [ Fence; If (Tid =: i_ (threads - 1), [ Store (flag, v "chunk", i_ 1) ]) ]
    in
    let section5 =
      Comment "Section 5: publish the local carries" :: publish_carries ~array:"local_carries" ~flag:"local_ready"
    in
    (* look-back carry combination, executed by thread 0 *)
    let combine_step =
      (* gc ← local_carries(t) corrected by gc *)
      [ Let_arr ("ng", TData, k) ]
      @ List.concat
          (List.init k (fun j ->
               let lacc = Printf.sprintf "lacc%d" j in
               [ Let (lacc, TData, Load ("local_carries", (v "t" *: i_ k) +: i_ j)) ]
               @ List.concat
                   (List.init k (fun j' ->
                        correct_stmts plan j' ~q:(i_ (m - 1 - j))
                          ~carry:(Load ("gc", i_ j')) ~acc:lacc))
               @ [ Store ("ng", i_ j, v lacc) ]))
      @ List.init k (fun j -> Store ("gc", i_ j, Load ("ng", i_ j)))
    in
    let lookback_thread0 =
      [ Let ("wave", TInt, v "chunk" /: i_ plan.P.lookback_window);
        Let_arr ("gc", TData, k);
        Let ("have", TInt, i_ 0);
        If (v "wave" >: i_ 0,
            [ Let ("src", TInt, (v "wave" *: i_ plan.P.lookback_window) -: i_ 1);
              While (Load ("global_ready", v "src") =: i_ 0, [ Yield_hint ]) ]
            @ List.init k (fun j ->
                  Store ("gc", i_ j, Load ("global_carries", (v "src" *: i_ k) +: i_ j)))
            @ [ Set ("have", i_ 1) ]);
        Let ("t", TInt,
             Ite (v "wave" >: i_ 0, v "wave" *: i_ plan.P.lookback_window, i_ 0));
        While (v "t" <: v "chunk",
               [ While (Load ("local_ready", v "t") =: i_ 0, [ Yield_hint ]);
                 If_else (v "have" =: i_ 0,
                          List.init k (fun j ->
                              Store ("gc", i_ j,
                                     Load ("local_carries", (v "t" *: i_ k) +: i_ j)))
                          @ [ Set ("have", i_ 1) ],
                          combine_step);
                 Set ("t", v "t" +: i_ 1) ]) ]
      @ List.init k (fun j -> Store ("g_carry", i_ j, Load ("gc", i_ j)))
    in
    let section6 =
      [ Comment "Section 6: Phase 2 — variable look-back and chunk correction";
        If (v "chunk" >: i_ 0,
            [ If (Tid =: i_ 0, lookback_thread0); Sync;
              For ("i", i_ 0, i_ x, i_ 1,
                   [ Let ("q", TInt, (Tid *: i_ x) +: v "i");
                     Let ("cacc", TData, Load ("vals", v "i")) ]
                   @ List.concat
                       (List.init k (fun j ->
                            correct_stmts plan j ~q:(v "q")
                              ~carry:(Load ("g_carry", i_ j)) ~acc:"cacc"))
                   @ [ Store ("vals", v "i", v "cacc") ]) ]) ]
      @ (Comment "publish the global carries"
         :: publish_carries ~array:"global_carries" ~flag:"global_ready")
    in
    let section7 =
      [ Comment "Section 7: emit the results";
        For ("i", i_ 0, i_ x, i_ 1,
             [ Let ("idx", TInt, v "base" +: (Tid *: i_ x) +: v "i");
               If (v "idx" <: v "n", [ Store ("output", v "idx", Load ("vals", v "i")) ]) ]) ]
    in
    let cache_sync = if cache_loads = [] then [] else cache_loads @ [ Sync ] in
    {
      kname = "plr_kernel";
      data_ty_name = S.ctype;
      data_is_float = (S.kind = Plr_util.Scalar.Floating);
      params = [ "n" ];
      arrays = global_arrays @ shared_arrays;
      threads;
      body =
        cache_sync @ section2 @ section3 @ serial_solve
        @ [ Comment "Section 4: hierarchical merging" ]
        @ merging @ section5 @ section6 @ section7;
    }

  let run ?sched ?trace ~spec (plan : P.t) input =
    ignore spec;
    let n = Array.length input in
    if n <> plan.P.n then invalid_arg "Kernelgen.run: input length differs from plan";
    let k = kernel plan in
    let blocks = P.num_chunks plan in
    let inputs = Array.map to_value input in
    let outputs =
      Array.make n (Ast.zero_of ~data_is_float:k.data_is_float TData)
    in
    let _table, _stats =
      Interp.run_grid_stats ?sched ?trace ~kernel:k ~blocks
        ~params:[ ("n", n) ]
        ~globals:[ ("input", inputs); ("output", outputs) ]
        ()
    in
    Array.map of_value outputs
end
