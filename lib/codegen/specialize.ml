(** Factor-list specialization views shared by the CUDA emitter and the VM
    kernel generator — thin accessors over the backend-agnostic compiled
    factor plan ({!Plr_factors.Factor_plan}), so both back ends compile the
    same §3.1 choices the GPU model charges and the CPU backends execute. *)

module Make (S : Plr_util.Scalar.S) = struct
  module P = Plr_core.Plan.Make (S)
  module F = P.F

  let compiled (plan : P.t) j = plan.P.fplan.F.compiled.(j)

  let table (plan : P.t) j = F.table plan.P.fplan j

  let table_elems (plan : P.t) j = F.table_elems plan.P.fplan j

  let one_positions (plan : P.t) j = F.one_positions plan.P.fplan j

  (* Elements of list [j] buffered in the shared-memory cache.  Forms that
     fold into code or into a tiny period keep nothing in shared memory. *)
  let cached_elems (plan : P.t) j =
    match compiled plan j with
    | F.All_equal _ | F.Zero_one { period = Some _; _ } | F.Repeating _ -> 0
    | F.Decayed { cutoff; _ } -> min cutoff plan.P.shared_cache_elems
    | F.Zero_one { period = None; _ } | F.Dense _ ->
        min plan.P.m plan.P.shared_cache_elems
end
