(* The native-CPU counterpart of {!Emit}: translate a compiled plan into a
   self-contained C translation unit the JIT runtime ([Plr_jit]) compiles
   with the system cc and dlopens.  Two entry points are emitted:

   - [plr_jit_run] — the dispatched fast path: a fully specialized serial
     FIR+feedback kernel with every coefficient baked into the code as a
     constant, operating on raw restrict pointers.  Its operation order
     replicates [Serial.full] exactly (zero-initialized accumulator, taps
     in increasing lag order, then feedback terms j = 1..k against final
     previous outputs), so for integer scalars — and, compiled with
     contraction and fast-math off, for float scalars too — the output is
     bitwise identical to the OCaml serial reference.
   - [plr_jit_run_chunked] — the paper's §3 two-phase chunked algorithm
     with the correction-factor sweeps specialized per {!Factor_plan}
     class: all-equal lists fold into constants (or a bare add for 1, or
     nothing for 0), zero/one lists become bitmask-predicated conditional
     adds, repeating lists store one period, decayed lists truncate at the
     zero tail, dense lists keep the full static table.  Operation order
     mirrors [Multicore.run_sequential_k], so results are bitwise
     identical to the sequential-fallback backend at the same chunk size.

   Float arithmetic is emitted against IEEE binary64 with one explicit
   [(double)(float)] rounding step per operation for the F32 emulation;
   native ints are 63-bit, so integer kernels accumulate modulo 2^64 (in
   uint64_t, where wrap-around is defined) and renormalize to 63 bits at
   each store — congruent mod 2^63, hence bit-equal to OCaml. *)

module Make (S : Plr_util.Scalar.S) = struct
  module P = Plr_core.Plan.Make (S)
  module F = P.F

  let supported =
    match S.rep with
    | Plr_util.Scalar.Int_rep -> true
    | Plr_util.Scalar.Float_rep _ -> true
    | Plr_util.Scalar.Other_rep -> false

  let is_int =
    match S.rep with Plr_util.Scalar.Int_rep -> true | _ -> false

  let is_f32 =
    match S.rep with
    | Plr_util.Scalar.Float_rep Plr_util.Scalar.Round_f32 -> true
    | _ -> false

  (* Exact literals: C99 hex floats round-trip every finite binary64;
     non-finite factor values (an unstable signature's overflowed tables)
     go through a bit-pattern constructor. *)
  let flit f =
    if Float.is_finite f then Printf.sprintf "%h" f
    else Printf.sprintf "plr_from_bits(UINT64_C(0x%Lx))" (Int64.bits_of_float f)

  let lit (v : S.t) =
    match S.rep with
    | Plr_util.Scalar.Int_rep -> Printf.sprintf "INT64_C(%d)" v
    | Plr_util.Scalar.Float_rep _ -> flit v
    | Plr_util.Scalar.Other_rep -> invalid_arg "Cemit.lit: unsupported scalar"

  let ctype = if is_int then "int64_t" else "double"

  (* Per-operation rounding wrapper: the F32 emulation rounds every add
     and multiply to binary32; binary64 and int leave the expression
     alone. *)
  let rnd e = if is_f32 then "plr_rnd(" ^ e ^ ")" else "(" ^ e ^ ")"

  let scalar_comment =
    if is_int then "native 63-bit int (accumulated mod 2^64, renormalized at stores)"
    else if is_f32 then "emulated binary32 (binary64 ops, rounded to float per operation)"
    else "binary64"

  (* One fused FIR + feedback term sequence for output index [iexpr],
     accumulating into [a]; [guard j] emits the prologue bound checks
     (empty in the steady state).  Mirrors [Serial.full]'s operation
     order exactly.  [srcx]/[srcy] build the load expressions, so the
     tagged-representation kernel can reuse the same term sequence. *)
  let plain_srcx t = Printf.sprintf "x[i - %d]" t
  let plain_srcy j = Printf.sprintf "y[i - %d]" j

  let emit_terms b ~s ~guard_tap ~guard_fb ~srcx ~srcy =
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let forward = s.Signature.forward and feedback = s.Signature.feedback in
    let term coeff src =
      if is_int then begin
        (* skipping zero terms and eliding unit multiplies is exact in
           modular arithmetic *)
        if not (S.is_zero coeff) then
          if S.is_one coeff then Some (Printf.sprintf "a += (uint64_t)%s;" src)
          else
            Some
              (Printf.sprintf "a += (uint64_t)%s * (uint64_t)%s;" (lit coeff)
                 src)
        else None
      end
      else if S.is_one coeff then
        (* 1.0 * x is exact in IEEE arithmetic, so the multiply may go *)
        Some (Printf.sprintf "a = %s;" (rnd ("a + " ^ src)))
      else
        (* zero coefficients stay: 0.0 * inf and 0.0 * nan are not
           identities, and the reference computes them *)
        Some
          (Printf.sprintf "a = %s;"
             (rnd
                (Printf.sprintf "a + %s"
                   (rnd (Printf.sprintf "%s * %s" (lit coeff) src)))))
    in
    Array.iteri
      (fun t c ->
        match term c (srcx t) with
        | None -> ()
        | Some body -> pf "      %s%s\n" (guard_tap t) body)
      forward;
    Array.iteri
      (fun j0 c ->
        let j = j0 + 1 in
        match term c (srcy j) with
        | None -> ()
        | Some body -> pf "      %s%s\n" (guard_fb j) body)
      feedback

  let acc_decl = if is_int then "uint64_t a = 0;" else "double a = 0.0;"
  let store = if is_int then "plr_norm(a)" else "a"

  (* The add used by the correction sweeps: y[i] <- y[i] + rhs with the
     scalar's own rounding/normalization, mirroring
     [Factor_plan.apply_list_f] / [apply_list_int]. *)
  let sweep_add ~dst rhs =
    if is_int then
      Printf.sprintf "%s = plr_norm((uint64_t)%s + %s);" dst dst rhs
    else Printf.sprintf "%s = %s;" dst (rnd (Printf.sprintf "%s + %s" dst rhs))

  let table_initializer stored =
    let b = Buffer.create 256 in
    Array.iteri
      (fun q v ->
        if q > 0 then Buffer.add_string b ", ";
        if q mod 6 = 0 && q > 0 then Buffer.add_string b "\n  ";
        Buffer.add_string b (lit v))
      stored;
    Buffer.contents b

  let mask_initializer ones nbits =
    let b = Buffer.create 64 in
    let nbytes = (nbits + 7) / 8 in
    for i = 0 to nbytes - 1 do
      let byte = ref 0 in
      for bit = 0 to 7 do
        let q = (i * 8) + bit in
        if q < nbits && Plr_factors.Factor_plan.mask_get ones q then
          byte := !byte lor (1 lsl bit)
      done;
      if i > 0 then Buffer.add_string b ", ";
      if i mod 12 = 0 && i > 0 then Buffer.add_string b "\n  ";
      Buffer.add_string b (Printf.sprintf "0x%02x" !byte)
    done;
    Buffer.contents b

  (* One static sweep function per factor list, specialized to its
     compiled class.  Bodies replicate the monomorphic OCaml sweeps
     operation for operation. *)
  let emit_sweep b (fplan : F.t) j =
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let name = Printf.sprintf "plr_sweep_%d" j in
    let header () =
      pf "static void %s(%s* restrict y, int64_t base, int64_t len, %s carry) {\n"
        name ctype ctype
    in
    (match fplan.F.compiled.(j) with
    | F.All_equal f when S.is_zero f ->
        pf "/* factor list %d: all factors are 0 — the sweep is a no-op */\n" j;
        header ();
        pf "  (void)y; (void)base; (void)len; (void)carry;\n"
    | F.All_equal f when S.is_one f ->
        pf "/* factor list %d: all factors are 1 — carry adds straight in */\n" j;
        header ();
        pf "  for (int64_t q = 0; q < len; q++) {\n";
        pf "    %s\n" (sweep_add ~dst:"y[base + q]" "carry");
        pf "  }\n"
    | F.All_equal f ->
        pf "/* factor list %d: all factors equal %s (folded to a constant) */\n"
          j (lit f);
        header ();
        if is_int then
          pf "  uint64_t fc = (uint64_t)%s * (uint64_t)carry;\n" (lit f)
        else
          (* loop-invariant product, hoisted exactly like apply_list_f *)
          pf "  %s fc = %s;\n" ctype
            (rnd (Printf.sprintf "%s * carry" (lit f)));
        pf "  for (int64_t q = 0; q < len; q++) {\n";
        pf "    %s\n" (sweep_add ~dst:"y[base + q]" "fc");
        pf "  }\n"
    | F.Zero_one { ones; _ } ->
        pf "/* factor list %d: 0/1 factors — bitmask-predicated conditional add */\n" j;
        pf "static const uint8_t plr_ones_%d[] = { %s };\n" j
          (mask_initializer ones fplan.F.m);
        header ();
        pf "  for (int64_t q = 0; q < len; q++) {\n";
        pf "    if ((plr_ones_%d[q >> 3] >> (q & 7)) & 1) {\n" j;
        pf "      %s\n" (sweep_add ~dst:"y[base + q]" "carry");
        pf "    }\n  }\n"
    | F.Repeating { period; stored } ->
        pf "/* factor list %d: repeating with period %d — one stored period */\n"
          j period;
        pf "static const %s plr_tab_%d[%d] = { %s };\n" ctype j period
          (table_initializer stored);
        header ();
        pf "  for (int64_t q = 0; q < len; q++) {\n";
        if is_int then
          pf "    uint64_t p = (uint64_t)plr_tab_%d[q %% %d] * (uint64_t)carry;\n"
            j period
        else
          pf "    %s p = %s;\n" ctype
            (rnd (Printf.sprintf "plr_tab_%d[q %% %d] * carry" j period));
        pf "    %s\n" (sweep_add ~dst:"y[base + q]" "p");
        pf "  }\n"
    | F.Decayed { cutoff; stored } ->
        pf "/* factor list %d: decays to exact zero at index %d — tail skipped */\n"
          j cutoff;
        if cutoff > 0 then
          pf "static const %s plr_tab_%d[%d] = { %s };\n" ctype j cutoff
            (table_initializer stored);
        header ();
        pf "  int64_t hi = len < %d ? len : %d;\n" cutoff cutoff;
        if cutoff = 0 then pf "  (void)y; (void)base; (void)carry; (void)hi;\n"
        else begin
          pf "  for (int64_t q = 0; q < hi; q++) {\n";
          if is_int then
            pf "    uint64_t p = (uint64_t)plr_tab_%d[q] * (uint64_t)carry;\n" j
          else
            pf "    %s p = %s;\n" ctype
              (rnd (Printf.sprintf "plr_tab_%d[q] * carry" j));
          pf "    %s\n" (sweep_add ~dst:"y[base + q]" "p");
          pf "  }\n"
        end
    | F.Dense l ->
        pf "/* factor list %d: general — full static table */\n" j;
        pf "static const %s plr_tab_%d[%d] = { %s };\n" ctype j (Array.length l)
          (table_initializer l);
        header ();
        pf "  for (int64_t q = 0; q < len; q++) {\n";
        if is_int then
          pf "    uint64_t p = (uint64_t)plr_tab_%d[q] * (uint64_t)carry;\n" j
        else
          pf "    %s p = %s;\n" ctype
            (rnd (Printf.sprintf "plr_tab_%d[q] * carry" j));
        pf "    %s\n" (sweep_add ~dst:"y[base + q]" "p");
        pf "  }\n");
    pf "}\n\n"

  let emit ~(fplan : F.t) (s : S.t Signature.t) =
    if not supported then
      invalid_arg "Cemit.emit: scalar has no native C representation";
    let k = Signature.order s in
    let taps = Signature.fir_taps s in
    if fplan.F.order <> k then
      invalid_arg "Cemit.emit: factor plan order does not match the signature";
    let b = Buffer.create (16 * 1024) in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "/* Generated by PLR — native JIT kernel.\n";
    pf " * signature: %s\n" (Signature.to_string S.to_string s);
    pf " * scalar: %s\n" scalar_comment;
    pf " * order k = %d, feed-forward taps = %d, factor table length m = %d\n"
      k taps fplan.F.m;
    for j = 0 to k - 1 do
      pf " * factor list %d: %s\n" j (F.describe fplan j)
    done;
    pf " * Compile with contraction and fast-math OFF: the contract is\n";
    pf " * bitwise identity with the OCaml serial reference. */\n\n";
    pf "#include <stdint.h>\n\n";
    if is_f32 then
      pf "static inline double plr_rnd(double v) { return (double)(float)v; }\n";
    if is_int then begin
      pf "/* OCaml's native int is 63-bit two's complement; reducing a mod-2^64\n";
      pf "   accumulator at store time is congruent mod 2^63, so results match\n";
      pf "   the OCaml kernels bit for bit. */\n";
      pf "static inline int64_t plr_norm(uint64_t v) {\n";
      pf "  return (int64_t)(v << 1) >> 1;\n}\n"
    end;
    if not is_int then
      pf "static inline double plr_from_bits(uint64_t u) {\n\
         \  union { uint64_t u; double d; } v; v.u = u; return v.d;\n}\n";
    pf "\n";
    (* ---- the dispatched serial-order kernel ---- *)
    let prologue = max (taps - 1) k in
    let serial_body ~srcx ~srcy ~st =
      pf "  int64_t i = 0;\n";
      pf "  int64_t pro = n < %d ? n : %d;\n" prologue prologue;
      pf "  for (; i < pro; i++) {\n";
      pf "      %s\n" acc_decl;
      emit_terms b ~s ~srcx ~srcy
        ~guard_tap:(fun t ->
          if t = 0 then "" else Printf.sprintf "if (i >= %d) " t)
        ~guard_fb:(fun j -> Printf.sprintf "if (i >= %d) " j);
      pf "      y[i] = %s;\n" st;
      pf "  }\n";
      pf "  for (; i < n; i++) {\n";
      pf "      %s\n" acc_decl;
      emit_terms b ~s ~srcx ~srcy ~guard_tap:(fun _ -> "")
        ~guard_fb:(fun _ -> "");
      pf "      y[i] = %s;\n" st;
      pf "  }\n}\n\n"
    in
    pf "/* Serial-order fused kernel: identical operation sequence to the\n";
    pf "   OCaml serial reference, coefficients baked in, monomorphic over\n";
    pf "   restrict pointers.  The first %d elements carry bounds guards;\n" prologue;
    pf "   the steady-state loop is guard-free. */\n";
    pf "void plr_jit_run(const %s* restrict x, %s* restrict y, int64_t n) {\n"
      ctype ctype;
    serial_body ~srcx:plain_srcx ~srcy:plain_srcy ~st:store;
    if is_int then begin
      (* The copy-free entry: OCaml int arrays are flat words holding
         2v+1.  Untagging on load is an arithmetic shift; retagging the
         mod-2^64 accumulator is (a << 1) | 1, which is congruent to
         tagging the renormalized 63-bit value, so the stored words are
         exactly the tagged form of the bitwise-exact results. *)
      pf "/* Same kernel over OCaml's tagged int representation (word = 2v+1):\n";
      pf "   runs directly on an OCaml int array with no copy or boxing. */\n";
      pf "void plr_jit_run_tagged(const %s* restrict x, %s* restrict y, int64_t n) {\n"
        ctype ctype;
      serial_body
        ~srcx:(fun t -> Printf.sprintf "(x[i - %d] >> 1)" t)
        ~srcy:(fun j -> Printf.sprintf "(y[i - %d] >> 1)" j)
        ~st:"(int64_t)((a << 1) | UINT64_C(1))"
    end;
    (* ---- specialized correction sweeps + the chunked algorithm ---- *)
    for j = 0 to k - 1 do
      emit_sweep b fplan j
    done;
    pf "/* The paper's two-phase chunked algorithm on one core: per-chunk\n";
    pf "   fused solve, then the specialized correction sweeps above applied\n";
    pf "   with the predecessor's inclusive carries.  Operation order matches\n";
    pf "   the sequential-fallback OCaml backend at the same chunk size. */\n";
    pf "void plr_jit_run_chunked(const %s* restrict x, %s* restrict y,\n\
       \                         int64_t n, int64_t m) {\n"
      ctype ctype;
    pf "  if (m < %d) m = %d;\n" (max 1 k) (max 1 k);
    pf "  if (m > %d) m = %d; /* factor tables cover one chunk of at most m */\n"
      (max 1 fplan.F.m) (max 1 fplan.F.m);
    pf "  int64_t chunks = (n + m - 1) / m;\n";
    pf "  %s g_prev[%d];\n" ctype (max 1 k);
    pf "  int have_prev = 0;\n";
    pf "  for (int64_t c = 0; c < chunks; c++) {\n";
    pf "    const int64_t base = c * m;\n";
    pf "    const int64_t len = (n - base) < m ? (n - base) : m;\n";
    pf "    for (int64_t i = base; i < base + len; i++) {\n";
    pf "      %s\n" acc_decl;
    emit_terms b ~s ~srcx:plain_srcx ~srcy:plain_srcy
      ~guard_tap:(fun t -> if t = 0 then "" else Printf.sprintf "if (i >= %d) " t)
      ~guard_fb:(fun j -> Printf.sprintf "if (i - base >= %d) " j);
    pf "      y[i] = %s;\n" store;
    pf "    }\n";
    if k > 0 then begin
      pf "    if (have_prev) {\n";
      for j = 0 to k - 1 do
        pf "      plr_sweep_%d(y, base, len, g_prev[%d]);\n" j j
      done;
      pf "    }\n";
      pf "    if (c < chunks - 1) {\n";
      pf "      for (int64_t j = 0; j < %d; j++)\n" k;
      pf "        g_prev[j] = (len - 1 - j >= 0) ? y[base + len - 1 - j] : %s;\n"
        (if is_int then "0" else "0.0");
      pf "      have_prev = 1;\n";
      pf "    }\n"
    end
    else pf "    (void)g_prev; (void)have_prev;\n";
    pf "  }\n}\n";
    Buffer.contents b

  let emit_plan (plan : P.t) = emit ~fplan:plan.P.fplan plan.P.signature

  let specialization_summary ~(fplan : F.t) =
    List.init fplan.F.order (fun j ->
        Printf.sprintf "factor list %d: %s" j (F.describe fplan j))
end
