module Make (S : Plr_util.Scalar.S) = struct
  let recurrence_in_place ~feedback y =
    let n = Array.length y in
    let k = Array.length feedback in
    for i = 0 to n - 1 do
      let acc = ref y.(i) in
      for j = 1 to min i k do
        acc := S.add !acc (S.mul feedback.(j - 1) y.(i - j))
      done;
      y.(i) <- !acc
    done

  let recurrence ~feedback t =
    let y = Array.copy t in
    recurrence_in_place ~feedback y;
    y

  let fir ~forward x =
    let n = Array.length x in
    let p = Array.length forward in
    Array.init n (fun i ->
        let acc = ref S.zero in
        for j = 0 to min i (p - 1) do
          acc := S.add !acc (S.mul forward.(j) x.(i - j))
        done;
        !acc)

  let full (s : S.t Signature.t) x = recurrence ~feedback:s.feedback (fir ~forward:s.forward x)

  (* Unboxed serial evaluator for float scalars: the same two-stage
     structure as [full] (FIR map, then in-place feedback solve), written
     monomorphically on [Buf.t] storage.  The accumulator lives in the
     destination slot, so no boxed float is allocated, and with emulated
     binary32 every add/multiply rounds through the
     [Int32.bits_of_float] round-trip exactly like [Scalar.F32] — results
     are bitwise identical to [full].  The boxed [full] above remains THE
     reference all backends are validated against. *)
  let full_into (s : S.t Signature.t) ~(src : Plr_util.Buf.t)
      ~(dst : Plr_util.Buf.t) =
    match S.rep with
    | Plr_util.Scalar.Float_rep rounding ->
        let module A1 = Bigarray.Array1 in
        let n = Plr_util.Buf.length src in
        if Plr_util.Buf.length dst < n then
          invalid_arg "Serial.full_into: dst too short";
        let f32 = rounding = Plr_util.Scalar.Round_f32 in
        let forward = s.Signature.forward and feedback = s.Signature.feedback in
        let p = Array.length forward in
        let k = Array.length feedback in
        for i = 0 to n - 1 do
          A1.unsafe_set dst i 0.0;
          let tmax = if i < p - 1 then i else p - 1 in
          for t = 0 to tmax do
            let x = Array.unsafe_get forward t *. A1.unsafe_get src (i - t) in
            let x =
              if f32 then Int32.float_of_bits (Int32.bits_of_float x) else x
            in
            let v = A1.unsafe_get dst i +. x in
            A1.unsafe_set dst i
              (if f32 then Int32.float_of_bits (Int32.bits_of_float v) else v)
          done
        done;
        for i = 0 to n - 1 do
          let jmax = if i < k then i else k in
          for j = 1 to jmax do
            let x = Array.unsafe_get feedback (j - 1) *. A1.unsafe_get dst (i - j) in
            let x =
              if f32 then Int32.float_of_bits (Int32.bits_of_float x) else x
            in
            let v = A1.unsafe_get dst i +. x in
            A1.unsafe_set dst i
              (if f32 then Int32.float_of_bits (Int32.bits_of_float v) else v)
          done
        done
    | _ -> invalid_arg "Serial.full_into: not a float scalar"

  let validate ?(tol = 1e-3) ~expected actual =
    let n = Array.length expected in
    if Array.length actual <> n then
      Error
        (Printf.sprintf "length mismatch: expected %d, got %d" n (Array.length actual))
    else begin
      let rec loop i =
        if i >= n then Ok ()
        else if S.approx_equal ~tol expected.(i) actual.(i) then loop (i + 1)
        else
          Error
            (Printf.sprintf "mismatch at index %d: expected %s, got %s" i
               (S.to_string expected.(i))
               (S.to_string actual.(i)))
      in
      loop 0
    end
end
