(** The straightforward serial algorithm from the beginning of the paper's
    §2 — O(nk) work, O(n+k) space.  Every parallel implementation in this
    repository is validated against this module, mirroring the paper's
    methodology (§5): exact comparison for integers, 1e-3 discrepancy bound
    for floats. *)

module Make (S : Plr_util.Scalar.S) : sig
  val recurrence : feedback:S.t array -> S.t array -> S.t array
  (** Equation (3): [y(i) = t(i) + Σ_j b-j·y(i-j)] with [y(j<0) = 0].
      The input array is the intermediate sequence [t]. *)

  val recurrence_in_place : feedback:S.t array -> S.t array -> unit
  (** Same, overwriting the input. *)

  val fir : forward:S.t array -> S.t array -> S.t array
  (** Equation (2), the map stage: [t(i) = Σ_j a-j·x(i-j)] with
      [x(j<0) = 0]. *)

  val full : S.t Signature.t -> S.t array -> S.t array
  (** Equation (1): [fir] then [recurrence]. *)

  val full_into : S.t Signature.t -> src:Plr_util.Buf.t -> dst:Plr_util.Buf.t -> unit
  (** {!full} on unboxed {!Plr_util.Buf.t} float64 storage (float scalars
      only — raises [Invalid_argument] otherwise).  Writes the first
      [Buf.length src] elements of the caller-allocated [dst]; the
      operation and rounding sequence replicates {!full} exactly, so the
      result is bitwise identical.  The boxed {!full} remains the
      reference every backend is validated against. *)

  val validate : ?tol:float -> expected:S.t array -> S.t array -> (unit, string) result
  (** Element-wise comparison in the paper's style.  [tol] defaults to
      [1e-3] and only matters for floating scalars.  On failure the message
      reports the first mismatching index and both values. *)
end
