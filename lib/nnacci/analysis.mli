(** Correction-factor analysis (paper §3.1).

    PLR inspects each precomputed factor list and emits specialized code when
    a structural property holds.  The properties, in the priority order the
    code generator applies them:

    - every factor equal → replace array accesses by one constant
      (helps the standard prefix sum, whose factors are all 1);
    - every factor 0 or 1 → conditionally add instead of multiply-add
      (helps tuple-based prefix sums);
    - the list repeats with some period → store only the first period;
    - the factors decay to exact zero after some index (floating-point
      filters with flushed denormals) → suppress all correction work past
      that index, letting later warps skip Phase 1 entirely;
    - otherwise no specialization applies. *)

type 'a t =
  | All_equal of 'a          (** every factor equals this constant *)
  | Zero_one                 (** every factor is 0 or 1, not all equal *)
  | Repeating of int         (** period length ≥ 2, shorter than the list *)
  | Decays_to_zero of int    (** all factors at index ≥ this are exactly 0 *)
  | General

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
val to_string : ('a -> string) -> 'a t -> string

module Make (S : Plr_util.Scalar.S) : sig
  val analyze : ?max_period:int -> S.t array -> S.t t
  (** Analyze one factor list.  The empty list is [All_equal S.zero].
      [max_period] bounds the repetition search (default: half the list
      length, the longest detectable period); the search is O(n·period) in
      the worst case, so callers with very long lists pass a small bound. *)

  val analyze_all : ?max_period:int -> S.t array array -> S.t t array

  val zero_one_period : S.t array -> int option
  (** Smallest period (≤ 64) of a 0/1 list — foldable into a compile-time
      modulo test, so no factor table needs to be stored. *)

  val one_positions : S.t array -> int -> int list
  (** Indices within one period whose factor is one. *)

  val zero_tail : S.t t array -> int option
  (** When every list decays to zero (or is all-zero), the smallest index
      from which all lists are zero — i.e. the point past which Phase 1/2
      corrections can be suppressed. *)
end
