type 'a t =
  | All_equal of 'a
  | Zero_one
  | Repeating of int
  | Decays_to_zero of int
  | General

let to_string coeff = function
  | All_equal c -> Printf.sprintf "all-equal(%s)" (coeff c)
  | Zero_one -> "zero-one"
  | Repeating p -> Printf.sprintf "repeating(period %d)" p
  | Decays_to_zero i -> Printf.sprintf "decays-to-zero(from %d)" i
  | General -> "general"

let pp pp_coeff fmt = function
  | All_equal c -> Format.fprintf fmt "all-equal(%a)" pp_coeff c
  | Zero_one -> Format.pp_print_string fmt "zero-one"
  | Repeating p -> Format.fprintf fmt "repeating(period %d)" p
  | Decays_to_zero i -> Format.fprintf fmt "decays-to-zero(from %d)" i
  | General -> Format.pp_print_string fmt "general"

module Make (S : Plr_util.Scalar.S) = struct
  let all_equal factors =
    let n = Array.length factors in
    if n = 0 then Some S.zero
    else begin
      let v = factors.(0) in
      let rec loop i = i >= n || (S.equal factors.(i) v && loop (i + 1)) in
      if loop 1 then Some v else None
    end

  let zero_one factors =
    Array.for_all (fun f -> S.is_zero f || S.is_one f) factors

  (* Smallest period p (1 ≤ p < n) such that factors.(i) = factors.(i mod p).
     Periods of 1 are reported as All_equal instead.  [max_period] caps the
     search: the worst case is O(n·max_period), so callers analyzing very
     long lists (CPU chunk sizes) bound it. *)
  let period ?max_period factors =
    let n = Array.length factors in
    let cap =
      match max_period with Some c -> min c (n / 2) | None -> n / 2
    in
    let holds p =
      let rec loop i = i >= n || (S.equal factors.(i) factors.(i - p) && loop (i + 1)) in
      loop p
    in
    let rec search p = if p > cap then None else if holds p then Some p else search (p + 1) in
    search 2

  (* Smallest index z such that factors.(i) = 0 for all i ≥ z, provided the
     tail saves at least half of the list. *)
  let zero_from factors =
    let n = Array.length factors in
    let rec last_nonzero i =
      if i < 0 then -1 else if S.is_zero factors.(i) then last_nonzero (i - 1) else i
    in
    let z = last_nonzero (n - 1) + 1 in
    if z < n then Some z else None

  let analyze ?max_period factors =
    match all_equal factors with
    | Some v -> All_equal v
    | None ->
        if zero_one factors then Zero_one
        else (
          match period ?max_period factors with
          | Some p -> Repeating p
          | None -> (
              match zero_from factors with
              | Some z when z <= Array.length factors / 2 -> Decays_to_zero z
              | Some _ | None -> General))

  let analyze_all ?max_period lists = Array.map (analyze ?max_period) lists

  let zero_one_period (l : S.t array) =
    let n = Array.length l in
    let holds p =
      let rec go i = i >= n || (S.equal l.(i) l.(i mod p) && go (i + 1)) in
      go p
    in
    let rec search p =
      if p > min 64 (n / 2) then None else if holds p then Some p else search (p + 1)
    in
    search 1

  let one_positions l p = List.filter (fun q -> S.is_one l.(q)) (List.init p Fun.id)

  let zero_tail analyses =
    let tail_of = function
      | All_equal v when S.is_zero v -> Some 0
      | Decays_to_zero z -> Some z
      | All_equal _ | Zero_one | Repeating _ | General -> None
    in
    Array.fold_left
      (fun acc a ->
        match (acc, tail_of a) with
        | Some best, Some z -> Some (max best z)
        | _, None | None, _ -> None)
      (Some 0) analyses
end
