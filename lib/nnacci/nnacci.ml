(* Monomorphic binary64 generation.  The generic loop below spends most
   of its time boxing float intermediates and making indirect
   [S.add]/[S.mul] calls, and for long chunks that cost dominates
   per-call factor compilation.  [Make] dispatches here when [S.rep]
   witnesses exact native-float arithmetic; the operation order is
   identical to the generic loop, so the outputs are bitwise the same.

   [flush] is the scalar's own [flush_denormal], applied once per
   output when [flush_denormals] is set.  Flushing matters beyond
   numerics: a decaying recurrence can get stuck hovering at the
   minimum subnormal (e.g. [1.6 x - 0.64 x] rounds back to [x] there),
   and flushing is what lets the tail reach the exact zeros that
   trigger the early exit. *)
let generate_float ~flush_denormals ~(flush : float -> float)
    ~(feedback : float array) ~m ~carry =
  let k = Array.length feedback in
  assert (carry >= 0 && carry < k);
  let window = Array.make k 0.0 in
  window.(k - 1 - carry) <- 1.0;
  let out = Array.make m 0.0 in
  let zero_run = ref 0 in
  let q = ref 0 in
  while !q < m && !zero_run < k do
    let acc = ref 0.0 in
    for t = 0 to k - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get feedback t *. Array.unsafe_get window (k - 1 - t))
    done;
    let v = if flush_denormals then flush !acc else !acc in
    Array.unsafe_set out !q v;
    if v = 0.0 then incr zero_run else zero_run := 0;
    for i = 0 to k - 2 do
      Array.unsafe_set window i (Array.unsafe_get window (i + 1))
    done;
    Array.unsafe_set window (k - 1) v;
    incr q
  done;
  out

module Make (S : Plr_util.Scalar.S) = struct
  let seed ~k ~carry =
    assert (carry >= 0 && carry < k);
    Array.init k (fun i -> if i = k - 1 - carry then S.one else S.zero)

  (* Run the recurrence (0 : feedback) over a sliding window of the last k
     values, starting from the one-hot seed, and collect m factors.

     Once k consecutive outputs are exactly zero the window is all zero,
     and a linear recurrence started from the zero state stays zero
     forever — the remaining entries keep [out]'s S.zero fill and the
     loop stops.  For decaying feedback (whose double-precision values
     underflow to exact zeros — the same tail the paper's §3 FTZ trick
     exploits) this turns the O(m·k) generation into O(cutoff·k), which
     is what keeps per-call factor compilation cheap for long chunks. *)
  let generate_boxed ~flush_denormals ~feedback ~m ~carry =
    let k = Array.length feedback in
    let window = seed ~k ~carry in
    (* window.(i) holds the value k - 1 - i steps back; keep it ordered so
       window.(k-1) is the most recent value. *)
    let out = Array.make m S.zero in
    let zero_run = ref 0 in
    let q = ref 0 in
    while !q < m && !zero_run < k do
      let acc = ref S.zero in
      for t = 0 to k - 1 do
        (* feedback.(t) = c-(t+1) multiplies the value (t+1) steps back. *)
        acc := S.add !acc (S.mul feedback.(t) window.(k - 1 - t))
      done;
      let v = if flush_denormals then S.flush_denormal !acc else !acc in
      out.(!q) <- v;
      if S.is_zero v then incr zero_run else zero_run := 0;
      (* slide *)
      for i = 0 to k - 2 do
        window.(i) <- window.(i + 1)
      done;
      window.(k - 1) <- v;
      incr q
    done;
    out

  let generate ?(flush_denormals = false) ~(feedback : S.t array) ~m ~carry ()
      : S.t array =
    match S.rep with
    | Plr_util.Scalar.Float_rep Plr_util.Scalar.Exact ->
        generate_float ~flush_denormals ~flush:S.flush_denormal ~feedback ~m
          ~carry
    | _ -> generate_boxed ~flush_denormals ~feedback ~m ~carry

  let factor_list ~feedback ~m ~carry = generate ~feedback ~m ~carry ()

  let factor_lists ?flush_denormals ~feedback ~m () =
    let k = Array.length feedback in
    Array.init k (fun carry -> generate ?flush_denormals ~feedback ~m ~carry ())
end

module I = Make (Plr_util.Scalar.Int)

let fibonacci ~m = I.factor_list ~feedback:[| 1; 1 |] ~m ~carry:0
let tribonacci ~m = I.factor_list ~feedback:[| 1; 1; 1 |] ~m ~carry:0
