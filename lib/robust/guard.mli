(** Guarded execution: run a parallel PLR backend, verify the result, and
    degrade along an explicit policy instead of returning silent garbage.

    The guard wraps any runner (the modeled-GPU engine, the multicore CPU
    backend, or the streaming pipeline) and checks its output for
    non-finite values and for forward error against a serial reference
    prefix.  On a violation — including an engine exception such as a
    detected protocol stall — it falls back, in order:

    + the parallel backend it was given;
    + the chunked algorithm on one domain
      ([Multicore.run_sequential_fallback]), which removes every
      scheduling assumption;
    + a float64-promoted serial evaluation (for floating scalars; integer
      scalars re-run the exact serial reference instead, since their
      wrap-around semantics are the defined ground truth).

    Every attempt and the violation that ended it are reported in the
    {!outcome}, so a caller can always distinguish "parallel result,
    verified" from "degraded" from "the recurrence itself diverges".

    Before any O(n) work the guard consults {!Stability}: an
    unstable-class signature whose correction factors provably overflow
    the scalar's float width within the input length skips the doomed
    parallel attempts outright (recorded as [Predicted_overflow]). *)

module Faults = Plr_gpusim.Faults

type stage =
  | Parallel             (** the caller-supplied parallel runner *)
  | Sequential_fallback  (** one-domain chunked execution *)
  | Float64_serial       (** float64-promoted (or exact integer) serial *)

type violation =
  | Non_finite of { index : int }
      (** a NaN or infinity in the output (floating scalars only) *)
  | Divergence of { index : int; got : float; expected : float; tol : float }
      (** forward error against the serial reference beyond [tol] *)
  | Engine_error of string
      (** the runner raised (protocol stall, injected fault, …) *)
  | Predicted_overflow of { index : int }
      (** stability analysis predicts factor overflow before the input
          ends; the stage was skipped, not run *)

type attempt = { stage : stage; violation : violation option }

type check =
  | No_reference       (** only the non-finite scan *)
  | Prefix of int      (** serial reference over the first [n] elements *)
  | Full               (** serial reference over the whole input *)

module Make (S : Plr_util.Scalar.S) : sig
  type runner = S.t Signature.t -> S.t array -> S.t array

  type outcome = {
    output : S.t array;
    stability : Stability.report;
    attempts : attempt list;  (** in the order tried; the accepted attempt
                                  is last and has [violation = None] *)
    degraded : bool;          (** a fallback stage produced [output] *)
    ok : bool;                (** [output] passed every armed check *)
  }

  val run :
    ?tol:float -> ?check:check -> ?probe:int ->
    ?stability:Stability.report -> runner ->
    S.t Signature.t -> S.t array -> outcome
  (** [run runner s x] executes the degradation policy above.  [tol]
      (default 1e-3, the paper's §5 bound) only matters for floating
      scalars; [check] defaults to [Prefix 4096]; [probe] is forwarded to
      {!Stability.analyze}.  [stability] supplies a precomputed report for
      this signature (the serve layer's plan cache) and skips the
      analysis entirely.  When even the final fallback fails its checks
      (a genuinely divergent recurrence), [ok] is false and [output] is the
      final fallback's result — with the failure recorded, never silent. *)

  val gpusim_runner :
    ?opts:Plr_core.Opts.t -> ?faults:Faults.plan -> ?threads_per_block:int ->
    ?x:int -> ?lookback_window:int -> spec:Plr_gpusim.Spec.t -> unit -> runner
  (** The modeled-GPU engine.  The optional shape arguments pin the plan
      via [Plan.compile_with] (the chaos harness uses small chunks so the
      look-back pipeline is exercised); by default the paper's compilation
      heuristics choose the shape. *)

  val multicore_runner :
    ?opts:Plr_core.Opts.t -> ?faults:Faults.plan ->
    ?plan:Plr_factors.Factor_plan.Make(S).t -> ?cancel:Plr_exec.Cancel.t ->
    ?pool:Plr_exec.Pool.t ->
    ?domains:int -> ?chunk_size:int -> ?window:int -> unit -> runner
  (** The single-pass CPU engine; [pool]/[domains] select the persistent
      domain pool, [plan] injects a precompiled factor plan (the serve
      layer's cache), and [chunk_size]/[window] carry a measured tuning
      ({!Plr_core.Tune.cpu_tuning}) exactly as in
      {!Plr_multicore.Multicore.Make.run}.
      [cancel] is polled at chunk boundaries; when it fires, the guard
      re-raises {!Plr_exec.Cancel.Cancelled} instead of degrading — a
      cancelled request is the caller's abort, not an engine fault. *)

  module JB : module type of Plr_jit.Backend.Make (S)

  val jit_runner : jit:JB.t -> fallback:runner -> runner
  (** Try the native JIT kernel first, handing the input to [fallback]
      whenever it is unavailable (still building, build failed, poisoned
      by its first-use bitwise validation, …) — the [jit.fallback] trace
      instant is recorded by the backend itself.  A JIT result is already
      bitwise-identical to the serial reference by construction, so the
      guard's check ladder passes it untouched. *)

  val stream_runner :
    ?pool:Plr_exec.Pool.t -> ?domains:int -> ?opts:Plr_core.Opts.t ->
    buffer:int -> unit -> runner
  (** Feeds the input through {!Plr_multicore.Stream} in [buffer]-sized
      chunks and concatenates the results. *)

  val pp_outcome : Format.formatter -> outcome -> unit
end

val stage_to_string : stage -> string
val violation_to_string : violation -> string
