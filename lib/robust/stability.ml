module N64 = Plr_nnacci.Nnacci.Make (Plr_util.Scalar.F64)

type cls = Stable | Marginal | Unstable

type report = {
  cls : cls;
  spectral_radius : float;
  growth_rate : float;
  overflow_f32 : int option;
  overflow_f64 : int option;
  decay_index : int option;
  probe : int;
}

let f32_max = 3.4028234663852886e38
let f64_max = Float.max_float
let f32_min_normal = 1.17549435e-38

let feedback_polynomial (s : float Signature.t) =
  let fb = s.Signature.feedback in
  let k = Array.length fb in
  Plr_util.Poly.of_coeffs
    (Array.init (k + 1) (fun i -> if i = k then 1.0 else -.fb.(k - 1 - i)))

let spectral_radius s =
  let p = feedback_polynomial s in
  match Plr_util.Roots.roots p with
  | [] -> 0.0
  | rs -> List.fold_left (fun acc r -> Float.max acc (Complex.norm r)) 0.0 rs

let classify ?(eps = 1e-2) s =
  let rho = spectral_radius s in
  if rho < 1.0 -. eps then Stable
  else if rho > 1.0 +. eps then Unstable
  else Marginal

let analyze ?(eps = 1e-2) ?(probe = 512) (s : float Signature.t) =
  let probe = max 16 probe in
  let rho = spectral_radius s in
  let cls =
    if rho < 1.0 -. eps then Stable
    else if rho > 1.0 +. eps then Unstable
    else Marginal
  in
  let factors = N64.factor_lists ~feedback:s.Signature.feedback ~m:probe () in
  let k = Array.length factors in
  (* envelope: the dominant factor magnitude at each index *)
  let env =
    Array.init probe (fun q ->
        let m = ref 0.0 in
        for j = 0 to k - 1 do
          m := Float.max !m (Float.abs factors.(j).(q))
        done;
        !m)
  in
  let last = probe - 1 in
  let mid = probe / 2 in
  let growth_rate =
    if env.(last) = 0.0 || env.(mid) = 0.0 then
      if env.(last) = 0.0 then 0.0 else 1.0
    else if Float.is_nan env.(last) || env.(last) = Float.infinity then rho
    else (env.(last) /. env.(mid)) ** (1.0 /. float_of_int (last - mid))
  in
  let first_above limit =
    let idx = ref None in
    (try
       for q = 0 to last do
         if (not (Float.is_finite env.(q))) || env.(q) > limit then begin
           idx := Some q;
           raise Exit
         end
       done
     with Exit -> ());
    match !idx with
    | Some q -> Some q
    | None ->
        (* extrapolate geometrically past the probe window *)
        if growth_rate > 1.0 +. 1e-9 && env.(last) > 0.0 then
          Some
            (last
            + int_of_float
                (Float.ceil
                   (Float.log (limit /. env.(last)) /. Float.log growth_rate)))
        else None
  in
  let decay_index =
    if env.(last) >= f32_min_normal || not (Float.is_finite env.(last)) then None
    else begin
      let q = ref last in
      while !q > 0 && env.(!q - 1) < f32_min_normal do
        decr q
      done;
      Some !q
    end
  in
  {
    cls;
    spectral_radius = rho;
    growth_rate;
    overflow_f32 = first_above f32_max;
    overflow_f64 = first_above f64_max;
    decay_index;
    probe;
  }

let to_string = function
  | Stable -> "stable"
  | Marginal -> "marginal"
  | Unstable -> "unstable"

let pp_report ppf r =
  let pp_idx ppf = function
    | None -> Format.fprintf ppf "none"
    | Some i -> Format.fprintf ppf "index %d" i
  in
  Format.fprintf ppf
    "@[<v>class: %s@,spectral radius: %.6g@,factor growth/step: %.6g@,\
     predicted f32 overflow: %a@,predicted f64 overflow: %a@,\
     f32 decay (FTZ cut-off): %a@,probe length: %d@]"
    (to_string r.cls) r.spectral_radius r.growth_rate pp_idx r.overflow_f32
    pp_idx r.overflow_f64 pp_idx r.decay_index r.probe
