(** Deterministic fault-injection (chaos) campaigns over the PLR engines.

    Each trial draws a reproducible fault plan from its seed (via
    {!Plr_util.Splitmix}), runs the target engine under it with the full
    {!Guard} degradation policy armed, and classifies the result against
    the serial reference:

    - {!Exact}: the perturbed run still produced the exact serial output
      (required for benign faults — reordering and flag delays — which the
      decoupled look-back protocol must tolerate by design);
    - {!Degraded}: the fault was detected (divergence, non-finite value, or
      a protocol stall) and a fallback stage recovered the correct output;
    - {!Detected}: every stage failed, but the failure was reported as a
      structured error — loud, not silent;
    - {!Silent}: the guard accepted an output that differs from the serial
      reference.  This is a bug in the engines or the guard; the test suite
      asserts it never happens.

    Trials cannot hang: the engine's fault scheduler bounds its steps and
    turns genuine deadlocks into {!Plr_core.Engine.Protocol_stall}, and the
    multicore pipeline raises {!Plr_multicore.Multicore.Fault_detected} on
    lost publications. *)

module Faults = Plr_gpusim.Faults

type target = Gpusim | Multicore | Jit | Scan
(** [Jit] exercises the native-kernel-first dispatch
    ({!Guard.Make.jit_runner}) over the faulted multicore fallback; odd
    seeds bypass the JIT deterministically so every campaign also drives
    the faulted OCaml path, and trials complete identically when no C
    toolchain is present (the dispatch degrades).

    [Scan] exercises the time-varying scan subsystem ({!Plr_scan.Scan})
    under its deterministic faulted pipeline.  Scan trials ignore the
    signature argument: the coefficient streams are drawn from the seed
    with run-length structure (identity runs, reset runs, dense
    stretches), and the subsystem's own verify-and-fall-back ladder is
    classified against the scan serial reference. *)

type outcome =
  | Exact
  | Degraded of string
  | Detected of string
  | Silent of string

type summary = {
  trials : int;
  exact : int;
  degraded : int;
  detected : int;
  silent : int;
  injected : int;  (** trials whose fault plan was non-empty *)
}

val benign_kinds : Faults.kind list
(** [Reorder] and [Delay_flag] — the protocol must absorb these exactly. *)

val target_to_string : target -> string
val outcome_to_string : outcome -> string

module Make (S : Plr_util.Scalar.S) : sig
  type trial = {
    seed : int;
    target : target;
    plan : Faults.plan;
    outcome : outcome;
  }

  val run_trial :
    ?n:int -> ?kinds:Faults.kind list -> ?max_events:int -> ?tol:float ->
    ?domains:int -> seed:int -> target:target -> S.t Signature.t -> trial
  (** One seeded trial: the input (values in [-9, 9]) and the fault plan
      are both derived from [seed].  [n] defaults to 384; the gpusim target
      is shaped to 8-element chunks with a look-back window of 4 so a few
      hundred elements exercise many chunks and several waves; the
      multicore target uses 16-element chunks.  [domains] sizes the
      multicore target's pool (trials whose derived plan is empty run the
      real parallel path). *)

  val campaign :
    ?trials:int -> ?n:int -> ?kinds:Faults.kind list -> ?max_events:int ->
    ?tol:float -> ?domains:int -> seed:int -> target:target ->
    S.t Signature.t -> summary * trial list
  (** [trials] (default 100) seeded trials with seeds [seed, seed+1, …]. *)

  val pp_summary : Format.formatter -> summary -> unit
end
