module Faults = Plr_gpusim.Faults
module Trace = Plr_trace.Trace

type stage = Parallel | Sequential_fallback | Float64_serial

type violation =
  | Non_finite of { index : int }
  | Divergence of { index : int; got : float; expected : float; tol : float }
  | Engine_error of string
  | Predicted_overflow of { index : int }

type attempt = { stage : stage; violation : violation option }
type check = No_reference | Prefix of int | Full

let stage_code = function
  | Parallel -> 0
  | Sequential_fallback -> 1
  | Float64_serial -> 2

let violation_code = function
  | Non_finite _ -> 0
  | Divergence _ -> 1
  | Engine_error _ -> 2
  | Predicted_overflow _ -> 3

let stage_to_string = function
  | Parallel -> "parallel"
  | Sequential_fallback -> "sequential-fallback"
  | Float64_serial -> "float64-serial"

let violation_to_string = function
  | Non_finite { index } -> Printf.sprintf "non-finite value at index %d" index
  | Divergence { index; got; expected; tol } ->
      Printf.sprintf "divergence at index %d: got %g, expected %g (tol %g)"
        index got expected tol
  | Engine_error msg -> Printf.sprintf "engine error: %s" msg
  | Predicted_overflow { index } ->
      Printf.sprintf "stability analysis predicts factor overflow at index %d"
        index

module Make (S : Plr_util.Scalar.S) = struct
  module Engine = Plr_core.Engine.Make (S)
  module Multicore = Plr_multicore.Multicore.Make (S)
  module Stream = Plr_multicore.Stream.Make (S)
  module Serial = Plr_serial.Serial.Make (S)
  module Serial64 = Plr_serial.Serial.Make (Plr_util.Scalar.F64)
  module JB = Plr_jit.Backend.Make (S)

  type runner = S.t Signature.t -> S.t array -> S.t array

  type outcome = {
    output : S.t array;
    stability : Stability.report;
    attempts : attempt list;
    degraded : bool;
    ok : bool;
  }

  let floating = S.kind = Plr_util.Scalar.Floating

  let scan_non_finite out =
    if not floating then None
    else begin
      let bad = ref None in
      (try
         Array.iteri
           (fun i v ->
             if not (Float.is_finite (S.to_float v)) then begin
               bad := Some i;
               raise Exit
             end)
           out
       with Exit -> ());
      !bad
    end

  let run ?(tol = 1e-3) ?(check = Prefix 4096) ?probe ?stability runner
      (s : S.t Signature.t) x =
    let n = Array.length x in
    let stability =
      (* The serving layer caches the report per signature and passes it
         back in, so repeated requests skip the O(k²) + O(probe·k)
         analysis. *)
      match stability with
      | Some r -> r
      | None -> Stability.analyze ?probe (Signature.map S.to_float s)
    in
    (* Serial reference prefix, shared by every attempt's forward-error
       check; computed at most once and only if an attempt gets that far. *)
    let reference =
      lazy
        (match check with
        | No_reference -> [||]
        | Prefix p -> Serial.full s (Array.sub x 0 (min (max 0 p) n))
        | Full -> Serial.full s x)
    in
    let compare_reference out =
      match check with
      | No_reference -> None
      | _ ->
          let r = Lazy.force reference in
          let bad = ref None in
          (try
             Array.iteri
               (fun i expected ->
                 if not (S.approx_equal ~tol expected out.(i)) then begin
                   bad :=
                     Some
                       (Divergence
                          {
                            index = i;
                            got = S.to_float out.(i);
                            expected = S.to_float expected;
                            tol;
                          });
                   raise Exit
                 end)
               r
           with Exit -> ());
          !bad
    in
    let validate out =
      match scan_non_finite out with
      | Some i -> Some (Non_finite { index = i })
      | None -> compare_reference out
    in
    Trace.begin_span2 Trace.Guard "guard.run" n 0;
    let attempts = ref [] in
    let record stage violation =
      (match violation with
      | Some v ->
          Trace.instant Trace.Guard "guard.degrade" (stage_code stage)
            (violation_code v)
      | None -> ());
      attempts := { stage; violation } :: !attempts
    in
    let try_stage stage f =
      match f () with
      | exception Plr_exec.Cancel.Cancelled ->
          (* Cooperative cancellation is the caller's abort, not an engine
             fault: close the guard span and let it propagate instead of
             burning the fallback stages on a request nobody wants. *)
          Trace.end_span ();
          raise Plr_exec.Cancel.Cancelled
      | exception e ->
          record stage (Some (Engine_error (Printexc.to_string e)));
          None
      | out -> (
          match validate out with
          | None ->
              record stage None;
              Some out
          | Some v ->
              record stage (Some v);
              None)
    in
    (* Pre-run prediction: an unstable signature whose factors provably
       overflow this scalar's float width inside the input makes the
       S-scalar attempts pointless — skip them before any O(n) work. *)
    let predicted_skip =
      if not floating then None
      else begin
        let ovf =
          if S.bytes <= 4 then stability.Stability.overflow_f32
          else stability.Stability.overflow_f64
        in
        match (stability.Stability.cls, ovf) with
        | Stability.Unstable, Some i when i < n ->
            Some (Predicted_overflow { index = i })
        | _ -> None
      end
    in
    let float64_serial () =
      if floating then
        let y64 =
          Serial64.full (Signature.map S.to_float s) (Array.map S.to_float x)
        in
        Array.map S.of_float y64
      else
        (* integer wrap-around is the defined ground truth: re-run the
           exact serial reference rather than losing bits in a float *)
        Serial.full s x
    in
    let finish output ~degraded ~ok =
      Trace.end_span ();
      { output; stability; attempts = List.rev !attempts; degraded; ok }
    in
    let accepted =
      match predicted_skip with
      | Some v ->
          record Parallel (Some v);
          record Sequential_fallback (Some v);
          None
      | None -> (
          match try_stage Parallel (fun () -> runner s x) with
          | Some out -> Some (out, false)
          | None -> (
              match
                try_stage Sequential_fallback (fun () ->
                    Multicore.run_sequential_fallback s x)
              with
              | Some out -> Some (out, true)
              | None -> None))
    in
    match accepted with
    | Some (out, degraded) -> finish out ~degraded ~ok:true
    | None -> (
        match float64_serial () with
        | exception e ->
            record Float64_serial (Some (Engine_error (Printexc.to_string e)));
            finish [||] ~degraded:true ~ok:false
        | out -> (
            (* the final stage is itself a serial evaluation, so only the
               non-finite scan is meaningful *)
            match scan_non_finite out with
            | None ->
                record Float64_serial None;
                finish out ~degraded:true ~ok:true
            | Some i ->
                record Float64_serial (Some (Non_finite { index = i }));
                finish out ~degraded:true ~ok:false))

  let gpusim_runner ?opts ?faults ?threads_per_block ?x ?lookback_window ~spec
      () : runner =
   fun s input ->
    let n = Array.length input in
    if n = 0 then [||]
    else begin
      let plan =
        match (threads_per_block, x) with
        | Some t, Some xv ->
            Engine.P.compile_with ?opts ?lookback_window ~spec ~n
              ~threads_per_block:t ~x:xv s
        | _ -> Engine.P.compile ?opts ~spec ~n s
      in
      (Engine.run_plan ?faults ~spec plan input).Engine.output
    end

  let multicore_runner ?opts ?faults ?plan ?cancel ?pool ?domains ?chunk_size
      ?window () : runner =
   fun s input ->
    Multicore.run ?opts ?faults ?plan ?cancel ?pool ?domains ?chunk_size
      ?window s input

  (* Try the native JIT kernel first; any unavailability (still building,
     build failed, poisoned, …) already recorded its [jit.fallback]
     instant inside [JB.run], so this simply hands the input to the OCaml
     fallback runner.  The JIT's own first-use bitwise validation against
     the serial reference runs before the guard's check ladder ever sees
     its output. *)
  let jit_runner ~jit ~(fallback : runner) : runner =
   fun s input ->
    match JB.run jit input with Some y -> y | None -> fallback s input

  let stream_runner ?pool ?domains ?opts ~buffer () : runner =
   fun s input ->
    let buffer = max 1 buffer in
    let stream = Stream.create ?pool ?domains ?opts s in
    let n = Array.length input in
    let pieces = ref [] in
    let pos = ref 0 in
    while !pos < n do
      let len = min buffer (n - !pos) in
      pieces := Stream.process stream (Array.sub input !pos len) :: !pieces;
      pos := !pos + len
    done;
    Array.concat (List.rev !pieces)

  let pp_outcome ppf o =
    Format.fprintf ppf "@[<v>stability:@,  @[<v>%a@]@,attempts:@," Stability.pp_report
      o.stability;
    List.iter
      (fun a ->
        Format.fprintf ppf "  %-19s %s@," (stage_to_string a.stage)
          (match a.violation with
          | None -> "accepted"
          | Some v -> violation_to_string v))
      o.attempts;
    Format.fprintf ppf "degraded: %b@,ok: %b@]" o.degraded o.ok
end
