(** Companion-matrix skip-ahead for classified signatures.

    An order-k linear recurrence's state — the window
    [(y(i-1), …, y(i-k))] — advances by one zero-input step when
    multiplied by the companion matrix [C] of the feedback coefficients
    ({!Plr_util.Smat.companion}).  Binary exponentiation of [C] therefore
    fast-forwards the state across [s] input-free steps in
    O(k³ log s) scalar operations instead of O(k·s) — the Khomovsky
    matrix-power trick (PAPERS.md), and the recovery primitive behind
    {!Plr_serve.Session}: a crashed stream restores its last checkpoint
    and skips ahead instead of replaying from zero.

    A constant input [d] per step (the steady state of a step input once
    the FIR taps are saturated) is handled by the augmented
    [(k+1)×(k+1)] matrix [[C d·e₀; 0 1]] acting on [(state, 1)].

    Exactness: over the integer scalars, native wrap-around makes [( + ),
    ( * )] a commutative ring, so the reassociated products of the matrix
    power are {e bitwise} equal to serial replay.  Over floats the
    reassociation changes rounding; agreement is within tolerance only
    (validated against {!replay} in the tests). *)

module Make (S : Plr_util.Scalar.S) : sig
  module M : module type of Plr_util.Smat.Make (S)

  type t
  (** A signature compiled for skip-ahead: feedback order [k], FIR tap
      count, and the (lazily built) companion matrix. *)

  val compile : S.t Signature.t -> t
  val order : t -> int
  (** Feedback order [k] — the state dimension. *)

  val taps : t -> int
  (** FIR tap count of the forward stage. *)

  val matrix : t -> M.mat
  (** The k×k companion matrix of the feedback coefficients. *)

  val power : t -> int -> M.mat
  (** [power t e] is [C^e] by binary exponentiation, O(k³ log e).
      [power t 0] is the identity.  @raise Invalid_argument on [e < 0]. *)

  val advance : t -> state:S.t array -> steps:int -> S.t array
  (** [advance t ~state ~steps] fast-forwards the state window
      [(y(i-1), …, y(i-k))] across [steps] zero-input steps — valid
      whenever every skipped index [i'] satisfies [x(i'-t) = 0] for all
      taps [t], e.g. a gap in a stream once [taps - 1] zero inputs have
      already been consumed serially.  O(k³ log steps).
      @raise Invalid_argument if [state] is not [k] long or [steps < 0]. *)

  val advance_const : t -> state:S.t array -> input:S.t -> steps:int -> S.t array
  (** Like {!advance} but every skipped step receives the same total
      forward contribution [input] (for a step input past the FIR warm-up,
      [input = Σ forward]).  Uses the augmented matrix; O(k³ log steps). *)

  val replay : ?input:S.t -> t -> state:S.t array -> steps:int -> S.t array
  (** Serial reference for the two functions above: [steps] explicit
      recurrence steps with constant forward contribution [input]
      (default zero).  O(k·steps); the validation baseline. *)

  val at : ?input:[ `Impulse | `Step ] -> t -> int -> S.t
  (** [at t n] is [y(n)] of the signature driven by a unit impulse
      (default) or unit step — the O(k³ log n) single-point query: a
      serial warm-up of [max k taps] elements, then one skip-ahead.
      @raise Invalid_argument on [n < 0]. *)

  module Checkpoint : sig
    type state = t

    type t = {
      pos : int;  (** elements consumed when the snapshot was taken *)
      carries : S.t array;  (** [carries.(j) = y(pos-1-j)], length [k] *)
      input_tail : S.t array;
          (** most-recent-last tail of raw inputs feeding the FIR stage,
              length [min pos (taps - 1)] *)
      digest : int;  (** integrity hash of the three fields above *)
    }

    val make : state -> pos:int -> carries:S.t array -> input_tail:S.t array -> t
    (** Snapshot (arrays are copied) with the digest filled in. *)

    val valid : t -> bool
    (** Recomputes the digest; [false] means the snapshot was corrupted
        in place and must not be restored. *)
  end
end
