module Faults = Plr_gpusim.Faults

type target = Gpusim | Multicore | Jit | Scan

type outcome =
  | Exact
  | Degraded of string
  | Detected of string
  | Silent of string

type summary = {
  trials : int;
  exact : int;
  degraded : int;
  detected : int;
  silent : int;
  injected : int;
}

let benign_kinds = [ Faults.Reorder; Faults.Delay_flag ]

let target_to_string = function
  | Gpusim -> "gpusim"
  | Multicore -> "multicore"
  | Jit -> "jit"
  | Scan -> "scan"

let outcome_to_string = function
  | Exact -> "exact"
  | Degraded why -> "degraded (" ^ why ^ ")"
  | Detected why -> "detected (" ^ why ^ ")"
  | Silent why -> "SILENT DIVERGENCE (" ^ why ^ ")"

module Make (S : Plr_util.Scalar.S) = struct
  module G = Guard.Make (S)
  module Serial = Plr_serial.Serial.Make (S)
  module Sc = Plr_scan.Scan.Make (S)

  type trial = {
    seed : int;
    target : target;
    plan : Faults.plan;
    outcome : outcome;
  }

  (* Small chunks so a few hundred elements span many chunks and several
     look-back waves. *)
  let gpusim_threads = 4
  let gpusim_x = 2
  let gpusim_m = gpusim_threads * gpusim_x
  let gpusim_lookback = 4
  let multicore_chunk = 16

  let spec = Plr_gpusim.Spec.titan_x

  (* Scan trials have no signature: the coefficient streams themselves
     are drawn from the seed, with run-length structure (identity runs,
     reset runs, dense stretches) so the trials also cross the segment
     shapes the sparse path classifies. *)
  let scan_chunk = 16

  let scan_inputs gen n =
    let a = Array.make n S.zero and b = Array.make n S.zero in
    let i = ref 0 in
    while !i < n do
      let run_len = min (n - !i) (1 + Plr_util.Splitmix.int gen ~bound:24) in
      let kind = Plr_util.Splitmix.int gen ~bound:4 in
      for j = !i to !i + run_len - 1 do
        match kind with
        | 0 ->
            a.(j) <- S.one;
            b.(j) <- S.zero
        | 1 ->
            a.(j) <- S.zero;
            b.(j) <- S.of_int (Plr_util.Splitmix.int_in gen ~lo:(-9) ~hi:9)
        | _ ->
            a.(j) <- S.of_int (Plr_util.Splitmix.int_in gen ~lo:(-2) ~hi:2);
            b.(j) <- S.of_int (Plr_util.Splitmix.int_in gen ~lo:(-9) ~hi:9)
      done;
      i := !i + run_len
    done;
    (a, b)

  (* The scan subsystem carries its own verify-and-fall-back ladder
     (carry verification inside the engine, serial fallback outside), so
     scan trials classify that ladder directly instead of going through
     {!Guard}: a loud failure that the serial fallback recovers is
     [Degraded]; an accepted output is re-checked independently against
     the serial reference and any mismatch is [Silent]. *)
  let run_scan_trial ~n ?kinds ~max_events ~tol ?domains ~seed () =
    let gen = Plr_util.Splitmix.create seed in
    let a, b = scan_inputs gen n in
    let chunks = (n + scan_chunk - 1) / scan_chunk in
    let plan =
      Faults.random ~seed:((seed * 31) + 7) ~chunks ~lanes:2 ?kinds
        ~max_events ()
    in
    let expected = Sc.serial a b in
    let matches out =
      Array.length out = Array.length expected
      && (let ok = ref true in
          Array.iteri
            (fun i v -> if not (S.approx_equal ~tol v out.(i)) then ok := false)
            expected;
          !ok)
    in
    let accepted, why =
      match Sc.run ~faults:plan ?domains ~chunk_size:scan_chunk a b with
      | y ->
          if matches y then (y, None)
          else
            ( expected,
              Some "scan verify: faulted output diverged from serial" )
      | exception Plr_scan.Scan.Fault_detected msg -> (expected, Some msg)
    in
    let outcome =
      if not (matches accepted) then
        Silent "scan ladder accepted an output that differs from serial"
      else match why with Some w -> Degraded w | None -> Exact
    in
    { seed; target = Scan; plan; outcome }

  let run_trial ?(n = 384) ?kinds ?(max_events = 3) ?(tol = 1e-3) ?domains
      ~seed ~target s =
    if target = Scan then run_scan_trial ~n ?kinds ~max_events ~tol ?domains ~seed ()
    else
    let k = max 1 (Signature.order s) in
    let gen = Plr_util.Splitmix.create seed in
    let input =
      Array.init n (fun _ -> S.of_int (Plr_util.Splitmix.int_in gen ~lo:(-9) ~hi:9))
    in
    let chunks =
      match target with
      | Gpusim -> (n + gpusim_m - 1) / gpusim_m
      | Multicore | Jit -> (n + multicore_chunk - 1) / multicore_chunk
      | Scan -> assert false (* dispatched to run_scan_trial above *)
    in
    let plan =
      Faults.random ~seed:((seed * 31) + 7) ~chunks ~lanes:k ?kinds ~max_events ()
    in
    let runner =
      match target with
      | Gpusim ->
          G.gpusim_runner ~faults:plan ~threads_per_block:gpusim_threads
            ~x:gpusim_x ~lookback_window:gpusim_lookback ~spec ()
      | Multicore ->
          G.multicore_runner ~faults:plan ?domains ~chunk_size:multicore_chunk ()
      | Jit -> (
          (* The native kernel itself is never faulted; what chaos must
             prove is that the JIT-first dispatch degrades through the
             faulted OCaml path without losing the guard's guarantees.
             Odd seeds bypass the JIT deterministically so every campaign
             exercises the faulted fallback too; any real-world
             unavailability (no cc, build failed) takes the same route. *)
          let fallback =
            G.multicore_runner ~faults:plan ?domains
              ~chunk_size:multicore_chunk ()
          in
          let jit =
            if seed land 1 = 1 then None
            else
              let fplan =
                G.JB.F.of_feedback ~feedback:s.Signature.feedback ~m:64 ()
              in
              G.JB.prepare ~mode:`Sync ~fplan s
          in
          match jit with
          | Some jb -> G.jit_runner ~jit:jb ~fallback
          | None -> fallback)
      | Scan -> assert false (* dispatched to run_scan_trial above *)
    in
    let expected = Serial.full s input in
    let o = G.run ~tol ~check:Guard.Full runner s input in
    let matches out =
      Array.length out = Array.length expected
      && (let ok = ref true in
          Array.iteri
            (fun i v -> if not (S.approx_equal ~tol v out.(i)) then ok := false)
            expected;
          !ok)
    in
    let parallel_violation () =
      List.fold_left
        (fun acc (a : Guard.attempt) ->
          match (acc, a.Guard.violation) with
          | None, Some v -> Some (Guard.violation_to_string v)
          | acc, _ -> acc)
        None o.G.attempts
      |> Option.value ~default:"unreported"
    in
    let outcome =
      if o.G.ok then
        if matches o.G.output then
          if o.G.degraded then Degraded (parallel_violation ()) else Exact
        else Silent "guard accepted an output that differs from serial"
      else Detected (parallel_violation ())
    in
    { seed; target; plan; outcome }

  let campaign ?(trials = 100) ?n ?kinds ?max_events ?tol ?domains ~seed
      ~target s =
    let results =
      List.init trials (fun i ->
          run_trial ?n ?kinds ?max_events ?tol ?domains ~seed:(seed + i)
            ~target s)
    in
    let count f = List.length (List.filter f results) in
    let summary =
      {
        trials;
        exact = count (fun t -> t.outcome = Exact);
        degraded =
          count (fun t -> match t.outcome with Degraded _ -> true | _ -> false);
        detected =
          count (fun t -> match t.outcome with Detected _ -> true | _ -> false);
        silent =
          count (fun t -> match t.outcome with Silent _ -> true | _ -> false);
        injected = count (fun t -> not (Faults.is_none t.plan));
      }
    in
    (summary, results)

  let pp_summary ppf s =
    Format.fprintf ppf
      "%d trials (%d with injected faults): %d exact, %d degraded-recovered, \
       %d detected, %d silent"
      s.trials s.injected s.exact s.degraded s.detected s.silent
end
