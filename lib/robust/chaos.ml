module Faults = Plr_gpusim.Faults

type target = Gpusim | Multicore | Jit

type outcome =
  | Exact
  | Degraded of string
  | Detected of string
  | Silent of string

type summary = {
  trials : int;
  exact : int;
  degraded : int;
  detected : int;
  silent : int;
  injected : int;
}

let benign_kinds = [ Faults.Reorder; Faults.Delay_flag ]

let target_to_string = function
  | Gpusim -> "gpusim"
  | Multicore -> "multicore"
  | Jit -> "jit"

let outcome_to_string = function
  | Exact -> "exact"
  | Degraded why -> "degraded (" ^ why ^ ")"
  | Detected why -> "detected (" ^ why ^ ")"
  | Silent why -> "SILENT DIVERGENCE (" ^ why ^ ")"

module Make (S : Plr_util.Scalar.S) = struct
  module G = Guard.Make (S)
  module Serial = Plr_serial.Serial.Make (S)

  type trial = {
    seed : int;
    target : target;
    plan : Faults.plan;
    outcome : outcome;
  }

  (* Small chunks so a few hundred elements span many chunks and several
     look-back waves. *)
  let gpusim_threads = 4
  let gpusim_x = 2
  let gpusim_m = gpusim_threads * gpusim_x
  let gpusim_lookback = 4
  let multicore_chunk = 16

  let spec = Plr_gpusim.Spec.titan_x

  let run_trial ?(n = 384) ?kinds ?(max_events = 3) ?(tol = 1e-3) ?domains
      ~seed ~target s =
    let k = max 1 (Signature.order s) in
    let gen = Plr_util.Splitmix.create seed in
    let input =
      Array.init n (fun _ -> S.of_int (Plr_util.Splitmix.int_in gen ~lo:(-9) ~hi:9))
    in
    let chunks =
      match target with
      | Gpusim -> (n + gpusim_m - 1) / gpusim_m
      | Multicore | Jit -> (n + multicore_chunk - 1) / multicore_chunk
    in
    let plan =
      Faults.random ~seed:((seed * 31) + 7) ~chunks ~lanes:k ?kinds ~max_events ()
    in
    let runner =
      match target with
      | Gpusim ->
          G.gpusim_runner ~faults:plan ~threads_per_block:gpusim_threads
            ~x:gpusim_x ~lookback_window:gpusim_lookback ~spec ()
      | Multicore ->
          G.multicore_runner ~faults:plan ?domains ~chunk_size:multicore_chunk ()
      | Jit -> (
          (* The native kernel itself is never faulted; what chaos must
             prove is that the JIT-first dispatch degrades through the
             faulted OCaml path without losing the guard's guarantees.
             Odd seeds bypass the JIT deterministically so every campaign
             exercises the faulted fallback too; any real-world
             unavailability (no cc, build failed) takes the same route. *)
          let fallback =
            G.multicore_runner ~faults:plan ?domains
              ~chunk_size:multicore_chunk ()
          in
          let jit =
            if seed land 1 = 1 then None
            else
              let fplan =
                G.JB.F.of_feedback ~feedback:s.Signature.feedback ~m:64 ()
              in
              G.JB.prepare ~mode:`Sync ~fplan s
          in
          match jit with
          | Some jb -> G.jit_runner ~jit:jb ~fallback
          | None -> fallback)
    in
    let expected = Serial.full s input in
    let o = G.run ~tol ~check:Guard.Full runner s input in
    let matches out =
      Array.length out = Array.length expected
      && (let ok = ref true in
          Array.iteri
            (fun i v -> if not (S.approx_equal ~tol v out.(i)) then ok := false)
            expected;
          !ok)
    in
    let parallel_violation () =
      List.fold_left
        (fun acc (a : Guard.attempt) ->
          match (acc, a.Guard.violation) with
          | None, Some v -> Some (Guard.violation_to_string v)
          | acc, _ -> acc)
        None o.G.attempts
      |> Option.value ~default:"unreported"
    in
    let outcome =
      if o.G.ok then
        if matches o.G.output then
          if o.G.degraded then Degraded (parallel_violation ()) else Exact
        else Silent "guard accepted an output that differs from serial"
      else Detected (parallel_violation ())
    in
    { seed; target; plan; outcome }

  let campaign ?(trials = 100) ?n ?kinds ?max_events ?tol ?domains ~seed
      ~target s =
    let results =
      List.init trials (fun i ->
          run_trial ?n ?kinds ?max_events ?tol ?domains ~seed:(seed + i)
            ~target s)
    in
    let count f = List.length (List.filter f results) in
    let summary =
      {
        trials;
        exact = count (fun t -> t.outcome = Exact);
        degraded =
          count (fun t -> match t.outcome with Degraded _ -> true | _ -> false);
        detected =
          count (fun t -> match t.outcome with Detected _ -> true | _ -> false);
        silent =
          count (fun t -> match t.outcome with Silent _ -> true | _ -> false);
        injected = count (fun t -> not (Faults.is_none t.plan));
      }
    in
    (summary, results)

  let pp_summary ppf s =
    Format.fprintf ppf
      "%d trials (%d with injected faults): %d exact, %d degraded-recovered, \
       %d detected, %d silent"
      s.trials s.injected s.exact s.degraded s.detected s.silent
end
