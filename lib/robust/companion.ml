module Make (S : Plr_util.Scalar.S) = struct
  module M = Plr_util.Smat.Make (S)
  module Serial = Plr_serial.Serial.Make (S)

  type t = {
    k : int;
    ntaps : int;
    forward : S.t array;
    feedback : S.t array;
    c : M.mat Lazy.t; (* built on first skip-ahead, not at compile *)
  }

  let compile (s : S.t Signature.t) =
    let feedback = s.Signature.feedback and forward = s.Signature.forward in
    {
      k = Array.length feedback;
      ntaps = Array.length forward;
      forward;
      feedback;
      c = lazy (M.companion feedback);
    }

  let order t = t.k
  let taps t = t.ntaps
  let matrix t = Lazy.force t.c

  (* Binary exponentiation: O(k^3 log e) scalar multiplications. *)
  let power t e =
    if e < 0 then invalid_arg "Companion.power: negative exponent";
    let rec go acc b e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then M.mat_mul acc b else acc in
        go acc (M.mat_mul b b) (e lsr 1)
    in
    go (M.identity t.k) (matrix t) e

  let check_state t state name =
    if Array.length state <> t.k then
      invalid_arg
        (Printf.sprintf "Companion.%s: state has %d entries, order is %d" name
           (Array.length state) t.k)

  let advance t ~state ~steps =
    check_state t state "advance";
    if steps < 0 then invalid_arg "Companion.advance: negative steps";
    if steps = 0 || t.k = 0 then Array.copy state
    else M.mat_vec (power t steps) state

  (* Constant input d per step: augment the state with a constant-1 lane,
     [[C d·e0; 0 1]] · (state, 1) = (C·state + d·e0, 1), and exponentiate
     the (k+1)×(k+1) matrix instead. *)
  let augmented t ~input =
    let k = t.k in
    let c = matrix t in
    Array.init (k + 1) (fun r ->
        Array.init (k + 1) (fun cl ->
            if r < k && cl < k then c.(r).(cl)
            else if r = 0 && cl = k then input
            else if r = k && cl = k then S.one
            else S.zero))

  let advance_const t ~state ~input ~steps =
    check_state t state "advance_const";
    if steps < 0 then invalid_arg "Companion.advance_const: negative steps";
    if steps = 0 || t.k = 0 then Array.copy state
    else begin
      let a = augmented t ~input in
      let rec go acc b e =
        if e = 0 then acc
        else
          let acc = if e land 1 = 1 then M.mat_mul acc b else acc in
          go acc (M.mat_mul b b) (e lsr 1)
      in
      let p = go (M.identity (t.k + 1)) a steps in
      let aug = Array.append state [| S.one |] in
      Array.sub (M.mat_vec p aug) 0 t.k
    end

  let replay ?(input = S.zero) t ~state ~steps =
    check_state t state "replay";
    if steps < 0 then invalid_arg "Companion.replay: negative steps";
    let state = Array.copy state in
    for _ = 1 to steps do
      let acc = ref input in
      for j = 1 to t.k do
        acc := S.add !acc (S.mul t.feedback.(j - 1) state.(j - 1))
      done;
      for j = t.k - 1 downto 1 do
        state.(j) <- state.(j - 1)
      done;
      if t.k > 0 then state.(0) <- !acc
    done;
    state

  let at ?(input = `Impulse) t n =
    if n < 0 then invalid_arg "Companion.at: negative index";
    let d = Array.fold_left S.add S.zero t.forward in
    let sample i =
      match input with
      | `Impulse -> if i = 0 then S.one else S.zero
      | `Step -> S.one
    in
    (* Serial warm-up long enough that (a) a full state window exists and
       (b) every skipped index is past the FIR taps, where the forward
       contribution is 0 (impulse) or the constant d (step). *)
    let p = max t.k t.ntaps in
    if n < p then begin
      let sig_ = Signature.create ~is_zero:S.is_zero ~forward:t.forward ~feedback:t.feedback in
      let y = Serial.full sig_ (Array.init (n + 1) sample) in
      y.(n)
    end
    else if t.k = 0 then (match input with `Impulse -> S.zero | `Step -> d)
    else begin
      let sig_ = Signature.create ~is_zero:S.is_zero ~forward:t.forward ~feedback:t.feedback in
      let y = Serial.full sig_ (Array.init p sample) in
      let state = Array.init t.k (fun j -> y.(p - 1 - j)) in
      let steps = n + 1 - p in
      let state' =
        match input with
        | `Impulse -> advance t ~state ~steps
        | `Step -> advance_const t ~state ~input:d ~steps
      in
      state'.(0)
    end

  module Checkpoint = struct
    type state = t

    type t = {
      pos : int;
      carries : S.t array;
      input_tail : S.t array;
      digest : int;
    }

    (* FNV-style fold over the polymorphic per-element hash: full scalar
       content (float bits included) without [Hashtbl.hash]'s depth cap. *)
    let compute_digest ~pos ~carries ~input_tail =
      let mix h v = (h * 0x01000193) lxor Hashtbl.hash v in
      let h = ref (0x811C9DC5 lxor pos) in
      Array.iter (fun v -> h := mix !h v) carries;
      h := mix !h (-1);
      Array.iter (fun v -> h := mix !h v) input_tail;
      !h land max_int

    let make (cp : state) ~pos ~carries ~input_tail =
      if Array.length carries <> cp.k then
        invalid_arg "Checkpoint.make: carries length <> order";
      if Array.length input_tail > max 0 (cp.ntaps - 1) then
        invalid_arg "Checkpoint.make: input tail longer than taps - 1";
      let carries = Array.copy carries in
      let input_tail = Array.copy input_tail in
      { pos; carries; input_tail; digest = compute_digest ~pos ~carries ~input_tail }

    let valid t =
      t.digest
      = compute_digest ~pos:t.pos ~carries:t.carries ~input_tail:t.input_tail
  end
end
